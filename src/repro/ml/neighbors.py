"""k-nearest-neighbors classifier.

A non-parametric baseline for the matcher zoo: predictions are majority
votes of the k closest training points under Euclidean distance on
standardized features.  Brute-force distances via numpy broadcasting —
ideal for EM's small labeled samples.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ml.base import (
    ClassifierMixin,
    Estimator,
    as_float_array,
    as_label_array,
    check_consistent,
)


class KNeighborsClassifier(Estimator, ClassifierMixin):
    """Majority vote over the k nearest (standardized-Euclidean) neighbors."""

    def __init__(self, n_neighbors: int = 5):
        if n_neighbors < 1:
            raise ConfigurationError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self.classes_: np.ndarray = np.array([], dtype=np.int64)

    def fit(self, X, y, feature_names: list[str] | None = None) -> "KNeighborsClassifier":
        """Memorize the (standardized) training set."""
        X = as_float_array(X)
        y = as_label_array(y)
        check_consistent(X, y)
        self.classes_, self._y_indices = np.unique(y, return_inverse=True)
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std == 0.0] = 1.0
        self._X = (X - self._mean) / self._std
        self._mark_fitted()
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Neighborhood class frequencies, columns ordered as ``classes_``."""
        self.check_fitted()
        X = as_float_array(X)
        if X.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fit on {self._X.shape[1]}"
            )
        Xs = (X - self._mean) / self._std
        k = min(self.n_neighbors, self._X.shape[0])
        proba = np.zeros((X.shape[0], len(self.classes_)))
        # Chunked distance computation keeps memory bounded.
        chunk = max(1, 2_000_000 // max(self._X.shape[0], 1))
        for start in range(0, Xs.shape[0], chunk):
            block = Xs[start : start + chunk]
            distances = np.sqrt(
                np.maximum(
                    (block**2).sum(axis=1)[:, None]
                    - 2.0 * block @ self._X.T
                    + (self._X**2).sum(axis=1)[None, :],
                    0.0,
                )
            )
            nearest = np.argpartition(distances, k - 1, axis=1)[:, :k]
            for i, neighbor_ids in enumerate(nearest):
                counts = np.bincount(
                    self._y_indices[neighbor_ids], minlength=len(self.classes_)
                )
                proba[start + i] = counts / k
        return proba
