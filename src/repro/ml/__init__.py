"""From-scratch ML substrate (the ecosystem's scikit-learn substitute)."""

from repro.ml.base import ClassifierMixin, Estimator
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.impute import SimpleImputer
from repro.ml.linear import LinearSVM, LogisticRegression
from repro.ml.metrics import (
    accuracy_score,
    confusion_counts,
    f1_score,
    log_loss,
    precision_recall_f1,
    precision_score,
    recall_score,
)
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_validate,
    mean_cv_score,
    train_test_split,
)
from repro.ml.naive_bayes import BernoulliNB, GaussianNB
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.regression_tree import DecisionTreeRegressor
from repro.ml.tree import DecisionTreeClassifier, TreeNode

__all__ = [
    "BernoulliNB",
    "ClassifierMixin",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "Estimator",
    "GaussianNB",
    "GradientBoostingClassifier",
    "KFold",
    "KNeighborsClassifier",
    "LinearSVM",
    "LogisticRegression",
    "RandomForestClassifier",
    "SimpleImputer",
    "StratifiedKFold",
    "TreeNode",
    "accuracy_score",
    "confusion_counts",
    "cross_validate",
    "f1_score",
    "log_loss",
    "mean_cv_score",
    "precision_recall_f1",
    "precision_score",
    "recall_score",
    "train_test_split",
]
