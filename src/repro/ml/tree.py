"""CART decision-tree classifier, with an inspectable tree structure.

The tree structure is deliberately a first-class, walkable object
(:class:`TreeNode`): Falcon (Section 5.1, Figures 3-4 of the paper)
extracts *blocking rules* from the root-to-"No"-leaf branches of the trees
in a random forest, so the EM layer needs direct access to split features
and thresholds — one reason this reproduction implements trees from
scratch rather than stubbing them.

Splits are of the form ``feature <= threshold`` (left branch) versus
``feature > threshold`` (right branch), chosen to minimize weighted Gini
impurity (or entropy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ml.base import (
    ClassifierMixin,
    Estimator,
    as_float_array,
    as_label_array,
    check_consistent,
)


@dataclass
class TreeNode:
    """A node of a fitted decision tree.

    Internal nodes carry ``feature``/``threshold`` and two children; leaves
    carry a class distribution.  ``n_samples`` is the number of training
    rows that reached the node.
    """

    n_samples: int
    class_counts: np.ndarray
    feature: int | None = None
    threshold: float | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    depth: int = 0
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    @property
    def prediction(self) -> int:
        """Index (into classes_) of the majority class at this node."""
        return int(np.argmax(self.class_counts))

    def proba(self) -> np.ndarray:
        total = self.class_counts.sum()
        if total == 0:
            return np.full_like(self.class_counts, 1.0 / len(self.class_counts))
        return self.class_counts / total


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - np.sum(proportions * proportions))


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts[counts > 0] / total
    return float(-np.sum(proportions * np.log2(proportions)))


_CRITERIA = {"gini": _gini, "entropy": _entropy}


class DecisionTreeClassifier(Estimator, ClassifierMixin):
    """CART classifier.

    Parameters
    ----------
    criterion:
        ``"gini"`` or ``"entropy"``.
    max_depth:
        Maximum tree depth; ``None`` for unbounded.
    min_samples_split:
        Minimum rows a node needs to be considered for splitting.
    min_samples_leaf:
        Minimum rows each child must receive.
    max_features:
        Number of features examined per split: ``None`` (all), an int, or
        ``"sqrt"`` — the forest sets this for decorrelated trees.
    random_state:
        Seed for feature subsampling.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int | None = None,
    ):
        if criterion not in _CRITERIA:
            raise ConfigurationError(
                f"criterion must be one of {sorted(_CRITERIA)}, got {criterion!r}"
            )
        if min_samples_split < 2:
            raise ConfigurationError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ConfigurationError("min_samples_leaf must be >= 1")
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.root_: TreeNode | None = None
        self.classes_: np.ndarray = np.array([], dtype=np.int64)
        self.n_features_: int = 0

    # ------------------------------------------------------------------
    def fit(self, X, y, feature_names: list[str] | None = None) -> "DecisionTreeClassifier":
        """Grow the tree on (X, y).  ``feature_names`` aid rule extraction."""
        X = as_float_array(X)
        y = as_label_array(y)
        check_consistent(X, y)
        self.classes_, y_indices = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        self.feature_names_ = (
            list(feature_names)
            if feature_names is not None
            else [f"f{i}" for i in range(self.n_features_)]
        )
        if len(self.feature_names_) != self.n_features_:
            raise ConfigurationError(
                f"{len(self.feature_names_)} feature names for "
                f"{self.n_features_} features"
            )
        rng = np.random.default_rng(self.random_state)
        self.root_ = self._build(X, y_indices, depth=0, rng=rng)
        self._mark_fitted()
        return self

    def _n_split_features(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        if isinstance(self.max_features, int) and self.max_features >= 1:
            return min(self.max_features, self.n_features_)
        raise ConfigurationError(f"invalid max_features: {self.max_features!r}")

    def _build(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator
    ) -> TreeNode:
        counts = np.bincount(y, minlength=len(self.classes_)).astype(np.float64)
        impurity_fn = _CRITERIA[self.criterion]
        node = TreeNode(
            n_samples=len(y),
            class_counts=counts,
            depth=depth,
            impurity=impurity_fn(counts),
        )
        if (
            node.impurity == 0.0
            or len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node
        split = self._best_split(X, y, counts, rng)
        if split is None:
            return node
        feature, threshold, left_mask = split
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[left_mask], y[left_mask], depth + 1, rng)
        node.right = self._build(X[~left_mask], y[~left_mask], depth + 1, rng)
        return node

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        parent_counts: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[int, float, np.ndarray] | None:
        n_samples, n_features = X.shape
        n_classes = len(self.classes_)
        impurity_fn = _CRITERIA[self.criterion]
        candidates = rng.permutation(n_features)[: self._n_split_features()]
        best: tuple[float, int, float] | None = None
        one_hot = np.zeros((n_samples, n_classes))
        one_hot[np.arange(n_samples), y] = 1.0
        for feature in candidates:
            values = X[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            # Cumulative class counts over the sorted rows.
            cumulative = np.cumsum(one_hot[order], axis=0)
            # Valid split positions: between distinct adjacent values,
            # honouring min_samples_leaf on both sides.
            distinct = sorted_values[:-1] < sorted_values[1:]
            positions = np.nonzero(distinct)[0]
            positions = positions[
                (positions + 1 >= self.min_samples_leaf)
                & (n_samples - positions - 1 >= self.min_samples_leaf)
            ]
            if positions.size == 0:
                continue
            for position in positions:
                left_counts = cumulative[position]
                right_counts = parent_counts - left_counts
                n_left = position + 1
                n_right = n_samples - n_left
                weighted = (
                    n_left * impurity_fn(left_counts)
                    + n_right * impurity_fn(right_counts)
                ) / n_samples
                if best is None or weighted < best[0] - 1e-12:
                    threshold = (
                        sorted_values[position] + sorted_values[position + 1]
                    ) / 2.0
                    best = (weighted, int(feature), float(threshold))
        if best is None:
            return None
        # Note: a zero-gain split is still taken (children are strictly
        # smaller, so recursion terminates); refusing it would make the
        # greedy tree blind to XOR-like interactions.
        _, feature, threshold = best
        return feature, threshold, X[:, feature] <= threshold

    # ------------------------------------------------------------------
    def _leaf_for(self, row: np.ndarray) -> TreeNode:
        node = self.root_
        assert node is not None
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node

    def predict_proba(self, X) -> np.ndarray:
        """Class-distribution predictions, one row per sample."""
        self.check_fitted()
        X = as_float_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, tree was fit on {self.n_features_}"
            )
        return np.vstack([self._leaf_for(row).proba() for row in X])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Depth of the fitted tree (0 for a single leaf)."""
        self.check_fitted()

        def walk(node: TreeNode) -> int:
            if node.is_leaf:
                return node.depth
            return max(walk(node.left), walk(node.right))

        return walk(self.root_)

    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        self.check_fitted()

        def walk(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root_)

    def export_text(self) -> str:
        """Human-readable rendering of the tree (used by Figure 4)."""
        self.check_fitted()
        lines: list[str] = []

        def walk(node: TreeNode, indent: str) -> None:
            if node.is_leaf:
                label = self.classes_[node.prediction]
                lines.append(f"{indent}predict: {label} (n={node.n_samples})")
                return
            name = self.feature_names_[node.feature]
            lines.append(f"{indent}if {name} <= {node.threshold:.4f}:")
            walk(node.left, indent + "  ")
            lines.append(f"{indent}else:  # {name} > {node.threshold:.4f}")
            walk(node.right, indent + "  ")

        walk(self.root_, "")
        return "\n".join(lines)
