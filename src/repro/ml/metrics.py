"""Classification metrics: the quantities the paper's tables report.

Table 1 and Table 2 report precision/recall; the guide (Figure 2) selects
matchers by cross-validated F1.  Positive class defaults to 1 ("match").
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import as_label_array


def confusion_counts(
    y_true, y_pred, positive: int = 1
) -> tuple[int, int, int, int]:
    """Return (true_pos, false_pos, true_neg, false_neg)."""
    y_true = as_label_array(y_true)
    y_pred = as_label_array(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    is_pos_true = y_true == positive
    is_pos_pred = y_pred == positive
    tp = int(np.sum(is_pos_true & is_pos_pred))
    fp = int(np.sum(~is_pos_true & is_pos_pred))
    tn = int(np.sum(~is_pos_true & ~is_pos_pred))
    fn = int(np.sum(is_pos_true & ~is_pos_pred))
    return tp, fp, tn, fn


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of labels predicted correctly."""
    y_true = as_label_array(y_true)
    y_pred = as_label_array(y_pred)
    if y_true.size == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def precision_score(y_true, y_pred, positive: int = 1) -> float:
    """tp / (tp + fp); 0.0 when nothing was predicted positive."""
    tp, fp, _, _ = confusion_counts(y_true, y_pred, positive)
    return tp / (tp + fp) if tp + fp else 0.0


def recall_score(y_true, y_pred, positive: int = 1) -> float:
    """tp / (tp + fn); 0.0 when there are no positives."""
    tp, _, _, fn = confusion_counts(y_true, y_pred, positive)
    return tp / (tp + fn) if tp + fn else 0.0


def f1_score(y_true, y_pred, positive: int = 1) -> float:
    """Harmonic mean of precision and recall."""
    precision = precision_score(y_true, y_pred, positive)
    recall = recall_score(y_true, y_pred, positive)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def precision_recall_f1(y_true, y_pred, positive: int = 1) -> tuple[float, float, float]:
    """All three headline metrics in one pass."""
    tp, fp, _, fn = confusion_counts(y_true, y_pred, positive)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return precision, recall, f1


def log_loss(y_true, proba, eps: float = 1e-15) -> float:
    """Binary cross-entropy of probability predictions for class 1."""
    y_true = as_label_array(y_true)
    proba = np.clip(np.asarray(proba, dtype=np.float64), eps, 1.0 - eps)
    if proba.ndim == 2:
        proba = proba[:, 1]
    return float(-np.mean(y_true * np.log(proba) + (1 - y_true) * np.log(1 - proba)))
