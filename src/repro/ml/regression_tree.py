"""CART regression tree: the base learner for gradient boosting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ml.base import Estimator, as_float_array


@dataclass
class RegressionNode:
    """A node of a fitted regression tree."""

    n_samples: int
    value: float  # mean target of the training rows that reached here
    node_id: int
    feature: int | None = None
    threshold: float | None = None
    left: "RegressionNode | None" = None
    right: "RegressionNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class DecisionTreeRegressor(Estimator):
    """Least-squares CART regressor.

    Splits minimize the children's total squared error, computed with
    cumulative sums over each feature's sort order.  ``apply`` returns
    per-row leaf ids so a boosting layer can re-estimate leaf values
    (Newton steps) without retraining.
    """

    def __init__(
        self,
        max_depth: int | None = 3,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
    ):
        if min_samples_split < 2:
            raise ConfigurationError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ConfigurationError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.root_: RegressionNode | None = None
        self.n_features_ = 0
        self.n_leaves_ = 0

    def fit(self, X, y) -> "DecisionTreeRegressor":
        """Grow the tree on (X, y) by least-squares splitting."""
        X = as_float_array(X)
        y = np.asarray(y, dtype=np.float64)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on the number of samples")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_features_ = X.shape[1]
        self._next_id = 0
        self.root_ = self._build(X, y, depth=0)
        self.n_leaves_ = self._next_id  # leaf ids are dense in [0, n_leaves)
        self._mark_fitted()
        return self

    def _new_leaf_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> RegressionNode:
        node = RegressionNode(
            n_samples=len(y), value=float(y.mean()), node_id=-1
        )
        if (
            len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or float(y.var()) == 0.0
        ):
            node.node_id = self._new_leaf_id()
            return node
        split = self._best_split(X, y)
        if split is None:
            node.node_id = self._new_leaf_id()
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple[int, float] | None:
        n_samples = len(y)
        best: tuple[float, int, float] | None = None
        for feature in range(self.n_features_):
            order = np.argsort(X[:, feature], kind="stable")
            values = X[order, feature]
            targets = y[order]
            prefix_sum = np.cumsum(targets)
            prefix_sq = np.cumsum(targets**2)
            total_sum = prefix_sum[-1]
            total_sq = prefix_sq[-1]
            distinct = values[:-1] < values[1:]
            positions = np.nonzero(distinct)[0]
            positions = positions[
                (positions + 1 >= self.min_samples_leaf)
                & (n_samples - positions - 1 >= self.min_samples_leaf)
            ]
            if positions.size == 0:
                continue
            n_left = positions + 1
            n_right = n_samples - n_left
            left_sum = prefix_sum[positions]
            right_sum = total_sum - left_sum
            # SSE = sum(y^2) - (sum y)^2 / n, per side.
            sse = (
                prefix_sq[positions]
                - left_sum**2 / n_left
                + (total_sq - prefix_sq[positions])
                - right_sum**2 / n_right
            )
            index = int(np.argmin(sse))
            score = float(sse[index])
            if best is None or score < best[0] - 1e-12:
                position = positions[index]
                threshold = float((values[position] + values[position + 1]) / 2.0)
                best = (score, feature, threshold)
        if best is None:
            return None
        return best[1], best[2]

    # ------------------------------------------------------------------
    def _leaf_for(self, row: np.ndarray) -> RegressionNode:
        node = self.root_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node

    def predict(self, X) -> np.ndarray:
        """Leaf value of each row."""
        self.check_fitted()
        X = as_float_array(X)
        return np.array([self._leaf_for(row).value for row in X])

    def apply(self, X) -> np.ndarray:
        """Leaf id of each row (ids dense in [0, n_leaves_))."""
        self.check_fitted()
        X = as_float_array(X)
        return np.array([self._leaf_for(row).node_id for row in X], dtype=np.int64)

    def set_leaf_values(self, values: dict[int, float]) -> None:
        """Overwrite leaf predictions (the boosting Newton step)."""
        self.check_fitted()

        def walk(node: RegressionNode) -> None:
            if node.is_leaf:
                if node.node_id in values:
                    node.value = values[node.node_id]
                return
            walk(node.left)
            walk(node.right)

        walk(self.root_)
