"""Single-table deduplication: the paper's "matching tuples within a
single table" scenario (Section 2).

Deduplication reduces to the two-table machinery by self-matching a table
against itself with the symmetric/self pairs removed, then clustering the
matches into duplicate groups and merging each group into a canonical
record.
"""

from __future__ import annotations

from typing import Any

import networkx as nx

from repro.blocking.base import Blocker, candset_pairs, make_candset
from repro.catalog.catalog import Catalog, get_catalog
from repro.postprocess.clustering import merge_records
from repro.table.table import Table

Pair = tuple[Any, Any]


def self_block_table(
    table: Table,
    blocker: Blocker,
    key: str = "id",
    catalog: Catalog | None = None,
) -> Table:
    """Block a table against itself, keeping each unordered pair once.

    The blocker runs as usual over (table, table); self pairs ``(x, x)``
    are dropped and of each symmetric pair only the ``l_id < r_id``
    ordering is kept.
    """
    cat = catalog if catalog is not None else get_catalog()
    raw = blocker.block_tables(table, table, key, key, catalog=cat)
    seen: set[Pair] = set()
    for l_id, r_id in candset_pairs(raw, cat):
        if l_id == r_id:
            continue
        ordered = (l_id, r_id) if str(l_id) < str(r_id) else (r_id, l_id)
        seen.add(ordered)
    return make_candset(sorted(seen, key=lambda p: (str(p[0]), str(p[1]))),
                        table, table, key, key, catalog=cat)


def duplicate_groups(pairs: set[Pair] | list[Pair]) -> list[set[Any]]:
    """Connected components of the duplicate graph (plain ids: one table)."""
    graph = nx.Graph()
    graph.add_edges_from(pairs)
    groups = [set(component) for component in nx.connected_components(graph)]
    groups.sort(key=lambda group: (-len(group), sorted(map(str, group))))
    return groups


def dedupe_table(
    table: Table,
    duplicate_pairs: set[Pair] | list[Pair],
    key: str = "id",
) -> Table:
    """Collapse duplicate groups into canonical records.

    Rows in no duplicate pair pass through unchanged; each duplicate group
    is merged with :func:`merge_records` (keeping the lexically-smallest
    key as the survivor's key).
    """
    index = table.index_by(key)
    groups = duplicate_groups(duplicate_pairs)
    in_group = {member for group in groups for member in group}
    rows = [row for row in table.rows() if row[key] not in in_group]
    for group in groups:
        members = sorted(group, key=str)
        merged = merge_records([index[m] for m in members], key_column=key)
        merged[key] = members[0]
        rows.append(merged)
    rows.sort(key=lambda row: str(row[key]))
    return Table.from_rows(rows, columns=table.columns)
