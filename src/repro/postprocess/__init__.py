"""Match post-processing: clustering, 1-1 enforcement, merging, dedup."""

from repro.postprocess.clustering import (
    cluster_matches,
    enforce_one_to_one,
    merge_matches,
    merge_records,
)
from repro.postprocess.dedupe import (
    dedupe_table,
    duplicate_groups,
    self_block_table,
)

__all__ = [
    "cluster_matches",
    "dedupe_table",
    "duplicate_groups",
    "enforce_one_to_one",
    "merge_matches",
    "merge_records",
    "self_block_table",
]
