"""Post-processing of match output: clustering, 1-1 enforcement, merging.

Section 3 notes that recent EM work considers "post-processing, e.g.,
clustering and merging matches" part of the problem.  Given the matcher's
pair-level output, this module:

* clusters matches into entities via connected components (networkx);
* enforces a one-to-one mapping when each side is internally
  duplicate-free (greedy max-score matching);
* merges the records of a cluster into a canonical record.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

import networkx as nx

from repro.table.schema import is_missing
from repro.table.table import Row, Table

Pair = tuple[Any, Any]


def cluster_matches(pairs: set[Pair] | list[Pair]) -> list[set[tuple[str, Any]]]:
    """Group matched pairs into entity clusters (connected components).

    Node identity is side-qualified — ``("l", id)`` / ``("r", id)`` — so a
    key value appearing in both tables stays two distinct nodes.  Returns
    clusters sorted by size (largest first), each a set of qualified ids.
    """
    graph = nx.Graph()
    for l_id, r_id in pairs:
        graph.add_edge(("l", l_id), ("r", r_id))
    clusters = [set(component) for component in nx.connected_components(graph)]
    clusters.sort(key=lambda cluster: (-len(cluster), sorted(map(str, cluster))))
    return clusters


def enforce_one_to_one(
    scored_pairs: list[tuple[Any, Any, float]]
) -> set[Pair]:
    """Keep a one-to-one subset of matches, preferring higher scores.

    Greedy max-weight matching: sort by descending score and accept a pair
    when neither side is taken yet.  The right policy when each input
    table is internally duplicate-free, as in the paper's two-table
    scenario — a tuple can have at most one true match.
    """
    taken_left: set[Any] = set()
    taken_right: set[Any] = set()
    kept: set[Pair] = set()
    ordered = sorted(scored_pairs, key=lambda item: (-item[2], str(item[0]), str(item[1])))
    for l_id, r_id, _ in ordered:
        if l_id in taken_left or r_id in taken_right:
            continue
        taken_left.add(l_id)
        taken_right.add(r_id)
        kept.add((l_id, r_id))
    return kept


def merge_records(rows: list[Row], key_column: str | None = None) -> Row:
    """Merge duplicate records into one canonical record.

    Per column: the most frequent non-missing value wins; frequency ties
    go to the longest string rendering (the most informative variant).
    The key column (if named) is taken from the first record.
    """
    if not rows:
        return {}
    merged: Row = {}
    columns = rows[0].keys()
    for column in columns:
        if column == key_column:
            merged[column] = rows[0][column]
            continue
        values = [row[column] for row in rows if not is_missing(row.get(column))]
        if not values:
            merged[column] = None
            continue
        counts = Counter(values)
        best = max(counts, key=lambda value: (counts[value], len(str(value))))
        merged[column] = best
    return merged


def merge_matches(
    matches: set[Pair] | list[Pair],
    ltable: Table,
    rtable: Table,
    l_key: str = "id",
    r_key: str = "id",
) -> Table:
    """Produce one merged record per matched entity cluster.

    Output columns are the union of both tables' non-key columns plus
    ``cluster_id`` and the member lists ``l_ids`` / ``r_ids``.
    """
    l_index = ltable.index_by(l_key)
    r_index = rtable.index_by(r_key)
    rows = []
    for cluster_id, cluster in enumerate(cluster_matches(matches)):
        members = []
        l_ids, r_ids = [], []
        for side, key_value in sorted(cluster, key=lambda n: (n[0], str(n[1]))):
            if side == "l":
                members.append({k: v for k, v in l_index[key_value].items() if k != l_key})
                l_ids.append(key_value)
            else:
                members.append({k: v for k, v in r_index[key_value].items() if k != r_key})
                r_ids.append(key_value)
        merged = merge_records(members)
        merged["cluster_id"] = cluster_id
        merged["l_ids"] = ",".join(str(v) for v in sorted(l_ids, key=str))
        merged["r_ids"] = ",".join(str(v) for v in sorted(r_ids, key=str))
        rows.append(merged)
    return Table.from_rows(rows)
