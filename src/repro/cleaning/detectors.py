"""Dirty-data detection: the lesson of the Vendors and Addresses tasks.

Section 5.3: "data cleaning is critical for EM ... It is important that
we can detect dirty data, isolate it, and then clean it, to maximize EM
accuracy."  The Brazilian vendors failed because thousands of records
shared one *generic* address; once those rows were removed, accuracy
recovered.  This module provides the detectors that automate that story:

* :func:`profile_missingness` — per-column missing-value rates;
* :func:`detect_generic_values` — values whose frequency is anomalous for
  a should-be-distinctive column (the generic-address signature);
* :func:`isolate_rows` — split a table into clean and quarantined parts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ConfigurationError
from repro.table.schema import is_missing
from repro.table.table import Table


def profile_missingness(table: Table) -> dict[str, float]:
    """Fraction of missing values per column."""
    if table.num_rows == 0:
        return {name: 0.0 for name in table.columns}
    return {
        name: sum(1 for v in table.column(name) if is_missing(v)) / table.num_rows
        for name in table.columns
    }


@dataclass
class GenericValueReport:
    """Outcome of generic-value detection on one column."""

    column: str
    generic_values: list[Any]
    counts: dict[Any, int] = field(default_factory=dict)
    expected_max_count: float = 0.0

    @property
    def affected_rows(self) -> int:
        return sum(self.counts[value] for value in self.generic_values)


def detect_generic_values(
    table: Table,
    column: str,
    distinctiveness: float = 0.01,
    min_count: int = 5,
) -> GenericValueReport:
    """Find suspiciously frequent values in a should-be-distinctive column.

    A column like an address or a VIN should have near-unique values; a
    value carried by more than ``max(min_count, distinctiveness * rows)``
    records is flagged as generic (placeholder/default data).  Missing
    values are ignored — they are a different pathology, reported by
    :func:`profile_missingness`.
    """
    if not 0.0 < distinctiveness <= 1.0:
        raise ConfigurationError(
            f"distinctiveness must be in (0, 1], got {distinctiveness}"
        )
    counts = Counter(v for v in table.column(column) if not is_missing(v))
    threshold = max(min_count, distinctiveness * table.num_rows)
    generic = sorted(
        (value for value, count in counts.items() if count > threshold),
        key=lambda value: -counts[value],
    )
    return GenericValueReport(
        column=column,
        generic_values=generic,
        counts={value: counts[value] for value in generic},
        expected_max_count=threshold,
    )


def isolate_rows(
    table: Table, column: str, values: list[Any]
) -> tuple[Table, Table]:
    """Split a table into (clean, quarantined) by membership in ``values``."""
    flagged = set(values)
    clean_idx = []
    dirty_idx = []
    for i, value in enumerate(table.column(column)):
        (dirty_idx if value in flagged else clean_idx).append(i)
    return table.take(clean_idx), table.take(dirty_idx)


def clean_em_dataset(dataset, column: str, distinctiveness: float = 0.01):
    """Detect generic values on both sides and quarantine affected rows.

    Returns ``(cleaned_dataset, reports)`` where the cleaned dataset's
    gold pairs are restricted to the surviving rows — the automated
    version of the paper's manual "remove the Brazilian vendors" fix.
    """
    from repro.datasets.generator import EMDataset

    reports = []
    tables = []
    for table in (dataset.ltable, dataset.rtable):
        table_report = detect_generic_values(table, column, distinctiveness)
        reports.append(table_report)
        clean, _ = isolate_rows(table, column, table_report.generic_values)
        tables.append(clean)
    l_ids = set(tables[0].column(dataset.l_key))
    r_ids = set(tables[1].column(dataset.r_key))
    cleaned = EMDataset(
        name=dataset.name + "_cleaned",
        ltable=tables[0],
        rtable=tables[1],
        gold_pairs={(a, b) for a, b in dataset.gold_pairs if a in l_ids and b in r_ids},
        l_key=dataset.l_key,
        r_key=dataset.r_key,
        notes=dict(dataset.notes),
    )
    return cleaned.register(), reports
