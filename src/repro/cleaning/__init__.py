"""Dirty-data detection and isolation (the Vendors/Addresses lesson)."""

from repro.cleaning.detectors import (
    GenericValueReport,
    clean_em_dataset,
    detect_generic_values,
    isolate_rows,
    profile_missingness,
)

__all__ = [
    "GenericValueReport",
    "clean_em_dataset",
    "detect_generic_values",
    "isolate_rows",
    "profile_missingness",
]
