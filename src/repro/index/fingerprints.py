"""Content fingerprints for index artifacts.

The runtime's :func:`repro.runtime.fingerprint` is *structural* — it
hashes node names and dependency digests, and callers salt in content
identity by hand.  Index artifacts cannot rely on structure: the same
logical column arrives as ever-fresh ``Table`` objects (blockers and
rule execution build projected views per call), and a mutated table must
never serve a stale index.  So artifact keys hash *content*: the key and
value columns are streamed value-by-value into the digest, and every
derived artifact chains the digests of what it was built from, exactly
as ``node_fingerprints`` chains dependency fingerprints.

Fingerprinting is O(n) per call, but n is a column scan — orders of
magnitude cheaper than the tokenize/encode/index build it lets us skip,
and the only way mutation detection can be sound without a table version
counter.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable
from typing import Any

from repro.table.table import Table
from repro.text.tokenizers import Tokenizer

# Bump when any artifact layout changes: persisted artifacts from older
# code must miss, not unpickle into the wrong shape.
FORMAT_VERSION = 1

_SEP = b"\x00"


def _stream(digest, parts: Iterable[Any]) -> None:
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(_SEP)


def combine(*parts: Any) -> str:
    """Digest small key parts (kind tags, digests, thresholds) into one."""
    digest = hashlib.sha256()
    _stream(digest, (FORMAT_VERSION, *parts))
    return digest.hexdigest()[:32]


def column_fingerprint(table: Table, key: str, column: str) -> str:
    """Content digest of a keyed column: the (key, value) sequence.

    Deliberately independent of the *names* of the columns: blockers and
    rule execution probe through projected views (``_blk``/``_v``), and a
    view over unchanged values must hit the artifacts of the original.
    """
    digest = hashlib.sha256()
    digest.update(b"column\x00")
    _stream(digest, table.column(key))
    digest.update(b"\x00values\x00")
    _stream(digest, table.column(column))
    return digest.hexdigest()[:32]


def tokenizer_fingerprint(tokenizer: Tokenizer) -> str:
    """Digest of a tokenizer's :meth:`~repro.text.tokenizers.Tokenizer.spec`.

    Covers the class and every constructor parameter (q, padding, pads,
    delimiters, ``return_set``), so changing the tokenizer can never
    serve the previous tokenizer's artifacts.
    """
    return combine("tokenizer", tokenizer.spec())


def vectorizer_fingerprint(vectorizer) -> str:
    """Digest of a vectorizer's ``spec()`` (class + constructor params).

    Same contract as :func:`tokenizer_fingerprint`, for the
    :class:`repro.text.vectorize.HashedNgramVectorizer` family: two
    vectorizers with equal specs embed identically, so vector artifacts
    built under one are served to the other — and changing ``q``,
    ``dim``, padding, or casing can never serve stale embeddings.
    """
    return combine("vectorizer", vectorizer.spec())
