"""Approximate-NN index: LSH bands over signed random projections.

The retrieval half of the vector blocking backend.  Records embedded by
:mod:`repro.text.vectorize` are signed against ``n_bands * band_bits``
random hyperplanes; the sign bits are grouped into bands, and two
records become candidates when any band's bits agree exactly (the
classic banding construction: ANDs within a band, ORs across bands).
Raising ``band_bits`` sharpens each band (fewer, closer candidates);
raising ``n_bands`` adds more chances to collide (higher recall, larger
candidate sets) — together they are the recall-vs-budget dial measured
in ``benchmarks/bench_vector_blocking.py``.

The hyperplanes are never materialized.  Each (bucket, plane) entry is a
Rademacher ±1 sign derived from ``blake2b(seed : bucket)`` — a valid
random-projection family, and deterministic across processes, which is
what lets the whole index live in :class:`repro.index.IndexStore` as a
content-fingerprinted artifact: a disk-tier reload probes byte-
identically to the build that wrote it.

:class:`AnnIndex` is a plain picklable artifact like
:class:`~repro.index.store.PrefixIndex`; the :class:`IndexStore`
accessor (``ann_index``) gives it the LRU + disk tiers, per-digest build
locks, and build/reuse metrics for free.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.exceptions import ConfigurationError
from repro.text.vectorize import SparseVector, cosine


def _plane_signs(bucket: int, seed: int, n_planes: int) -> tuple[float, ...]:
    """Deterministic ±1 hyperplane entries for one embedding bucket."""
    digest = hashlib.blake2b(
        f"{seed}:{bucket}".encode("utf-8"), digest_size=(n_planes + 7) // 8
    ).digest()
    bits = int.from_bytes(digest, "big")
    return tuple(1.0 if (bits >> p) & 1 else -1.0 for p in range(n_planes))


class AnnIndex:
    """Banded LSH over signed random projections of a record corpus.

    ``keys``/``vectors`` hold the indexed side in record order (vectors
    L2-normalized, so probe scoring is a sparse dot product); ``buckets``
    maps ``(band, band_bits_value)`` to the positions hashed there.
    Records with empty vectors (missing/empty values) are kept in the
    record list for positional alignment but never enter a bucket, and
    an empty probe vector returns no candidates.

    Read-only once built, like every :class:`IndexStore` artifact.
    """

    __slots__ = ("key", "n_bands", "band_bits", "seed", "keys", "vectors",
                 "buckets", "_sign_cache", "_np_signs", "_columns")

    def __init__(
        self,
        key: str,
        records: list[tuple[Any, SparseVector]],
        n_bands: int = 16,
        band_bits: int = 6,
        seed: int = 0,
    ):
        if n_bands < 1 or band_bits < 1:
            raise ConfigurationError(
                f"need n_bands >= 1 and band_bits >= 1, "
                f"got n_bands={n_bands} band_bits={band_bits}"
            )
        self.key = key
        self.n_bands = n_bands
        self.band_bits = band_bits
        self.seed = seed
        self.keys = [row_key for row_key, _ in records]
        self.vectors = [vector for _, vector in records]
        self._sign_cache: dict[int, tuple[float, ...]] = {}
        self._np_signs: dict[int, Any] = {}
        self._columns = None
        buckets: dict[tuple[int, int], list[int]] = {}
        for position, band_keys in enumerate(self.signature_batch(self.vectors)):
            for band_key in band_keys:
                buckets.setdefault(band_key, []).append(position)
        self.buckets = {
            band_key: tuple(positions) for band_key, positions in buckets.items()
        }

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    @property
    def n_planes(self) -> int:
        return self.n_bands * self.band_bits

    def signature(self, vector: SparseVector) -> list[tuple[int, int]]:
        """The ``(band, bits)`` bucket keys of one vector (empty: none).

        Buckets accumulate in ascending order: float addition is not
        associative, so pinning the order keeps this scalar path
        bit-identical to :meth:`signature_batch` (which vectorizes the
        per-plane accumulation but walks buckets in the same order) —
        and therefore bucket assignments identical between them.
        """
        if not vector:
            return []
        n_planes = self.n_planes
        accumulator = [0.0] * n_planes
        cache = self._sign_cache
        for bucket in sorted(vector):
            weight = vector[bucket]
            signs = cache.get(bucket)
            if signs is None:
                signs = cache[bucket] = _plane_signs(bucket, self.seed, n_planes)
            for plane in range(n_planes):
                accumulator[plane] += weight * signs[plane]
        bits = 0
        for plane in range(n_planes):
            if accumulator[plane] >= 0.0:
                bits |= 1 << plane
        return self._band_keys(bits)

    def _band_keys(self, bits: int) -> list[tuple[int, int]]:
        mask = (1 << self.band_bits) - 1
        return [
            (band, (bits >> (band * self.band_bits)) & mask)
            for band in range(self.n_bands)
        ]

    def signature_batch(self, vectors) -> list[list[tuple[int, int]]]:
        """Signatures for many vectors; one vectorized accumulator each.

        Per vector the ``n_planes`` accumulators update with one numpy
        multiply-add per bucket instead of a Python loop over planes —
        same buckets, same ascending order, same float64 operations, so
        the band keys equal :meth:`signature`'s exactly.  Falls back to
        the scalar path without numpy.
        """
        from repro.perf.arrays import HAVE_ARRAYS, np

        if not HAVE_ARRAYS:
            return [self.signature(vector) for vector in vectors]
        n_planes = self.n_planes
        cache = self._np_signs
        signatures: list[list[tuple[int, int]]] = []
        for vector in vectors:
            if not vector:
                signatures.append([])
                continue
            accumulator = np.zeros(n_planes, dtype=np.float64)
            for bucket in sorted(vector):
                signs = cache.get(bucket)
                if signs is None:
                    signs = cache[bucket] = np.array(
                        _plane_signs(bucket, self.seed, n_planes), dtype=np.float64
                    )
                accumulator += vector[bucket] * signs
            bits = 0
            for plane in np.nonzero(accumulator >= 0.0)[0].tolist():
                bits |= 1 << plane
            signatures.append(self._band_keys(bits))
        return signatures

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def probe(self, vector: SparseVector) -> list[int]:
        """Positions colliding with the query in at least one band."""
        candidates: set[int] = set()
        buckets = self.buckets
        for band_key in self.signature(vector):
            positions = buckets.get(band_key)
            if positions:
                candidates.update(positions)
        return sorted(candidates)

    def search(
        self,
        vector: SparseVector,
        threshold: float = 0.0,
        top_k: int | None = None,
    ) -> list[tuple[int, float]]:
        """Scored probe: ``(position, cosine)`` sorted by descending score.

        Candidates come from :meth:`probe`; each is verified with the
        exact cosine against the stored normalized vector, filtered by
        ``threshold``, and truncated to the ``top_k`` best (ties broken
        by position for determinism).
        """
        scored = []
        for position in self.probe(vector):
            score = cosine(vector, self.vectors[position])
            if score >= threshold:
                scored.append((position, score))
        scored.sort(key=lambda item: (-item[1], item[0]))
        if top_k is not None:
            scored = scored[:top_k]
        return scored

    def probe_batch(self, vectors) -> list[list[int]]:
        """:meth:`probe` for many vectors (batched signature computation)."""
        buckets = self.buckets
        probed: list[list[int]] = []
        for band_keys in self.signature_batch(vectors):
            candidates: set[int] = set()
            for band_key in band_keys:
                positions = buckets.get(band_key)
                if positions:
                    candidates.update(positions)
            probed.append(sorted(candidates))
        return probed

    def _corpus_columns(self):
        """Lazy bucket-major view of the corpus for batched cosine."""
        from repro.perf.arrays import HAVE_ARRAYS, SparseColumns

        if not HAVE_ARRAYS:
            return None
        if self._columns is None:
            self._columns = SparseColumns(self.vectors)
        return self._columns

    def search_batch(
        self,
        vectors,
        threshold: float = 0.0,
        top_k: int | None = None,
    ) -> list[list[tuple[int, float]]]:
        """:meth:`search` for many vectors in one batched pass.

        Candidates come from :meth:`probe_batch`; verification scores
        each query against the whole corpus with one columnar cosine
        accumulation (ascending shared buckets — bit-identical floats to
        the scalar :func:`~repro.text.vectorize.cosine`), then applies
        the same threshold/ranking/``top_k``.  Each per-query result
        equals :meth:`search` on that query exactly.
        """
        columns = self._corpus_columns()
        if columns is None:
            return [self.search(vector, threshold, top_k) for vector in vectors]
        from repro.perf.arrays import batch_cosine

        results: list[list[tuple[int, float]]] = []
        for vector, candidates in zip(vectors, self.probe_batch(vectors)):
            if not candidates:
                results.append([])
                continue
            scores = batch_cosine(vector, columns)
            scored = []
            for position in candidates:
                score = float(scores[position])
                if score >= threshold:
                    scored.append((position, score))
            scored.sort(key=lambda item: (-item[1], item[0]))
            if top_k is not None:
                scored = scored[:top_k]
            results.append(scored)
        return results

    # ------------------------------------------------------------------
    # Pickling (the sign caches and corpus columns are derived state)
    # ------------------------------------------------------------------
    _DERIVED_SLOTS = ("_sign_cache", "_np_signs", "_columns")

    def __getstate__(self):
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in self._DERIVED_SLOTS
        }

    def __setstate__(self, state):
        for slot, value in state.items():
            object.__setattr__(self, slot, value)
        object.__setattr__(self, "_sign_cache", {})
        object.__setattr__(self, "_np_signs", {})
        object.__setattr__(self, "_columns", None)

    def __len__(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AnnIndex {len(self.keys)} records, {self.n_bands}x"
            f"{self.band_bits} bands, {len(self.buckets)} buckets>"
        )
