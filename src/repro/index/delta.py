"""Live indexes: an immutable base segment plus a mutable delta segment.

The :class:`~repro.index.store.IndexStore` artifact chain is build-once/
probe-many: any table mutation changes the content fingerprint and
invalidates the whole chain, so absorbing even one new record meant a
full rebuild.  A :class:`LiveIndex` refactors that substrate into the
classic two-layer design of long-running search systems:

* the **base segment** is exactly today's read-only artifact chain —
  records → token sets → a corpus :class:`~repro.perf.tokens.TokenUniverse`
  → prefix postings → verification masks — built *through* the store
  (fingerprinted, disk-persistable, shared with every batch join over
  the same content) and never mutated;
* the **delta segment** is mutable and append-only: upserted records get
  token ids from the base universe plus an append-only extension for
  unseen tokens, their prefix tokens are insertion-sorted into per-token
  delta postings, and deletes *tombstone* positions (base or delta)
  instead of touching any posting list.

Reads probe both segments with the same
:func:`repro.simjoin.joins.probe_encoded` kernel the batch joins and the
serving path run — identical size/prefix bounds math, with tombstoned
positions filtered out of the candidate set — so the correctness
contract is exact: after any interleaving of upserts, deletes, and
compactions, a live index returns the *same survivors with the same
scores* as an index rebuilt from scratch over its current records
(property-tested in ``tests/test_live_index.py``, mirroring the
warm==cold contract of the store).

Soundness of the shared prefix filter rests on one invariant: the live
token ordering *extends* the base ordering (new tokens get ids past the
end of the base universe), so base-segment prefixes computed at build
time remain prefixes under the live ordering, and probe-side prefixes
are taken under the same total order as both segments' postings.

``compact()`` folds the delta into a new base: it snapshots the live
records, rebuilds the artifact chain (outside the lock — readers keep
probing the old segments), then swaps in the new base and replays any
operations that arrived during the build onto a fresh delta.  Writers
and readers are serialized by one ``RLock``; the expensive part of
compaction never holds it.

Observability: ``index_delta_ops_total{op}``, the ``index_tombstones``
gauge, ``index_compactions_total``, and the ``index_delta_probe_seconds``
histogram.

Persistence: :meth:`LiveIndex.save` writes ``live-<name>.pkl`` (base
records + the operation log since the last compaction) and a JSON
manifest ``live-<name>.json`` next to the store's fingerprinted
artifacts; :meth:`LiveIndex.load` rebuilds the base through the store
(warm from the disk tier when present) and replays the log.
"""

from __future__ import annotations

import json
import pickle
import threading
import time
from bisect import bisect_right
from pathlib import Path
from typing import Any, Callable

from repro.exceptions import (
    ConfigurationError,
    KeyConstraintError,
    ServiceError,
)
from repro.index.store import IndexStore, get_index_store
from repro.obs import get_registry, trace_span
from repro.perf.kernels import (
    MASK_UNIVERSE_MAX,
    make_overlap_bound,
    make_scorer,
    token_mask,
)
from repro.runtime.checkpoint import atomic_write_bytes
from repro.simjoin.filters import prefix_length, validate_measure
from repro.table.schema import is_missing
from repro.table.table import Table
from repro.text.tokenizers import Tokenizer, WhitespaceTokenizer

# Bump when the live-index persistence layout changes: stale files must
# be rejected, never unpickled into the wrong shape.
LIVE_FORMAT_VERSION = 1


class _BaseSegment:
    """The immutable artifact chain for one frozen snapshot of records.

    Everything here is a shared, read-only :class:`IndexStore` artifact
    (or derived from one); deletes against base records live *outside*
    this object, as a tombstone set held by the :class:`LiveIndex`.
    """

    __slots__ = (
        "records", "universe", "enc", "index", "masks", "positions",
        "encoding", "array_index",
    )

    def __init__(self, records, universe, enc, index, masks, positions, encoding):
        self.records = records      # [(key, value)] — the frozen snapshot
        self.universe = universe    # TokenUniverse over the snapshot
        self.enc = enc              # [(key, ids)] in record order
        self.index = index          # token id -> (sizes, positions)
        self.masks = masks          # [int] | None (mask kernel)
        self.positions = positions  # key -> base position
        self.encoding = encoding    # the PairEncoding artifact (array builds)
        self.array_index = None     # lazy ArrayIndex (batched probes)


class _DeltaSegment:
    """The mutable segment: append-only records, postings, tombstones."""

    __slots__ = ("enc", "values", "postings", "masks", "tombstones", "positions", "ext_ids")

    def __init__(self, with_masks: bool):
        self.enc: list[tuple[Any, tuple[int, ...]]] = []
        self.values: list[str] = []
        self.postings: dict[int, tuple[list[int], list[int]]] = {}
        self.masks: list[int] | None = [] if with_masks else None
        self.tombstones: set[int] = set()
        self.positions: dict[Any, int] = {}
        self.ext_ids: dict[str, int] = {}


class LiveIndex:
    """A probeable corpus index that absorbs upserts and deletes.

    One live index holds one ``(key column, value column, tokenizer,
    measure, threshold)`` configuration, like a :class:`~repro.serve.MatchServer`.
    Build one from a table (:meth:`from_table`) or start empty
    (:meth:`empty`) and stream records in::

        live = LiveIndex.from_table(corpus, "id", "name", threshold=0.4)
        live.upsert("b999", "dave smith")      # visible to the next probe
        live.delete("b17")                     # tombstoned, never rebuilt
        matches, n_candidates = live.search("dave smith")
        live.compact()                         # fold delta into a new base

    ``normalize`` (e.g. ``str.lower`` for :class:`OverlapBlocker`
    semantics) is applied to every indexed value and every query.  All
    public methods are thread-safe; ``compact()`` runs its expensive
    rebuild outside the lock so concurrent readers are never blocked on
    it.
    """

    def __init__(
        self,
        key: str,
        column: str,
        tokenizer: Tokenizer | None = None,
        measure: str = "jaccard",
        threshold: float = 0.7,
        kernel: str = "auto",
        normalize: Callable[[str], str] | None = None,
        store: IndexStore | None = None,
        name: str = "default",
        base_table: Table | None = None,
    ):
        # Imported here (not at module top): repro.simjoin.joins imports
        # repro.index.store, so a top-level import would be circular.
        from repro.simjoin.joins import KERNELS

        measure = validate_measure(measure)
        if measure != "overlap" and not 0.0 < threshold <= 1.0:
            raise ConfigurationError(
                f"threshold for {measure} must be in (0, 1], got {threshold}"
            )
        if measure == "overlap" and threshold < 1:
            raise ConfigurationError(f"overlap threshold must be >= 1, got {threshold}")
        if kernel not in KERNELS:
            raise ConfigurationError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        self.key = key
        self.column = column
        self.name = name
        self.tokenizer = (
            tokenizer if tokenizer is not None else WhitespaceTokenizer(return_set=True)
        )
        self.measure = measure
        self.threshold = threshold
        self.kernel = kernel
        self._normalize = normalize
        self._store = store if store is not None else get_index_store()
        self._scorer = make_scorer(measure)
        self._overlap_bound = make_overlap_bound(measure, threshold)

        # One RLock serializes every segment access; compaction holds it
        # only for its snapshot and swap phases, never for the rebuild.
        self._lock = threading.RLock()
        self._generation = 0
        self._compactions = 0
        self._compacting = False
        # Operation log since the last base build: the replayable delta
        # (persistence) and the replay source for ops racing a compaction.
        self._ops: list[tuple] = []

        if base_table is None:
            base_table = Table({key: [], column: []})
        self._base = self._build_base(base_table)
        self._base_tombstones: set[int] = set()
        self._delta = _DeltaSegment(with_masks=self._base.masks is not None)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_table(cls, table: Table, key: str, column: str, **kwargs: Any) -> "LiveIndex":
        """Build a live index whose base segment covers ``table``."""
        table.require_columns([key, column])
        return cls(key, column, base_table=table, **kwargs)

    @classmethod
    def empty(cls, key: str = "id", column: str = "value", **kwargs: Any) -> "LiveIndex":
        """A live index with an empty base — the streaming starting point."""
        return cls(key, column, **kwargs)

    def _prepare(self, value: Any) -> str | None:
        """Canonical string form of a value (``None`` when missing)."""
        if is_missing(value):
            return None
        text = str(value)
        return self._normalize(text) if self._normalize is not None else text

    def _view(self, table: Table, key: str, column: str) -> Table:
        """The table the store artifacts are built from.

        Without ``normalize`` the original table is passed through, so
        the base artifacts share fingerprints (and therefore cache
        entries) with any batch join over the same content.
        """
        if self._normalize is None:
            return table
        return Table(
            {
                key: table.column(key),
                column: [self._prepare(v) for v in table.column(column)],
            }
        )

    def _build_base(self, table: Table) -> _BaseSegment:
        """Run the store's artifact chain over a snapshot table."""
        store = self._store
        view = self._view(table, self.key, self.column)
        records = store.string_records(view, self.key, self.column)
        tc = store.tokenized_column(view, self.key, self.column, self.tokenizer)
        encoding = store.pair_encoding(tc, tc)
        index = store.prefix_index(encoding, self.measure, self.threshold).index
        use_masks = self.kernel == "mask" or (
            self.kernel in ("auto", "dict")
            and len(encoding.universe) <= MASK_UNIVERSE_MAX
        )
        masks = store.right_masks(encoding) if use_masks else None
        positions: dict[Any, int] = {}
        for position, (row_key, _) in enumerate(records):
            if row_key in positions:
                raise KeyConstraintError(
                    f"live index requires unique keys; {row_key!r} appears twice"
                )
            positions[row_key] = position
        return _BaseSegment(
            records, encoding.universe, encoding.right, index, masks, positions, encoding
        )

    def _base_array_index_locked(self):
        """The base segment's lazy :class:`~repro.perf.arrays.ArrayIndex`.

        Built through the store on first batched probe (``None`` when
        the array stack is unavailable or the base is empty).
        """
        from repro.perf.arrays import HAVE_ARRAYS

        base = self._base
        if base.array_index is None and HAVE_ARRAYS and base.enc:
            base.array_index = self._store.array_index(
                base.encoding, self.measure, self.threshold
            )
        return base.array_index

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def upsert(self, row_key: Any, value: Any) -> bool:
        """Insert or replace one record; visible to the very next probe.

        A missing ``value`` tombstones the key (a live record with no
        indexable value matches nothing — exactly what a rebuild over
        the current records would produce).  Returns ``True`` when the
        record was indexed, ``False`` when it degenerated to a delete.
        """
        with self._lock:
            self._ops.append(("u", row_key, value))
            live = self._upsert_locked(row_key, value)
            self._generation += 1
            tombstones = len(self._base_tombstones) + len(self._delta.tombstones)
        registry = get_registry()
        registry.counter("index_delta_ops_total", op="upsert").inc()
        registry.gauge("index_tombstones", index=self.name).set(tombstones)
        return live

    def delete(self, row_key: Any) -> bool:
        """Tombstone one record; returns whether it was present."""
        with self._lock:
            self._ops.append(("d", row_key))
            removed = self._tombstone_locked(row_key)
            self._generation += 1
            tombstones = len(self._base_tombstones) + len(self._delta.tombstones)
        registry = get_registry()
        registry.counter("index_delta_ops_total", op="delete").inc()
        registry.gauge("index_tombstones", index=self.name).set(tombstones)
        return removed

    def _apply_locked(self, op: tuple) -> None:
        """Replay one logged operation (compaction swap / load)."""
        if op[0] == "u":
            self._upsert_locked(op[1], op[2])
        else:
            self._tombstone_locked(op[1])

    def _upsert_locked(self, row_key: Any, value: Any, staged: dict | None = None) -> bool:
        self._tombstone_locked(row_key)
        prepared = self._prepare(value)
        if prepared is None:
            return False
        delta = self._delta
        ids = self._encode_indexed(set(self.tokenizer.tokenize_cached(prepared)))
        position = len(delta.enc)
        delta.enc.append((row_key, ids))
        delta.values.append(prepared)
        if delta.masks is not None:
            delta.masks.append(token_mask(ids))
        size = len(ids)
        if size:
            prefix = ids[: prefix_length(self.measure, self.threshold, size)]
            if staged is not None:
                # Bulk path: collect (size, position) per token; the
                # caller merges each token's postings once per batch.
                for token in prefix:
                    staged.setdefault(token, []).append((size, position))
            else:
                for token in prefix:
                    entry = delta.postings.get(token)
                    if entry is None:
                        entry = delta.postings[token] = ([], [])
                    sizes, positions = entry
                    # Postings stay sorted by (size, position): equal sizes
                    # keep insertion order, and positions only ever grow.
                    at = bisect_right(sizes, size)
                    sizes.insert(at, size)
                    positions.insert(at, position)
        delta.positions[row_key] = position
        return True

    def _merge_staged_postings_locked(self, staged: dict) -> None:
        """Fold a batch's staged ``(size, position)`` pairs into the delta.

        Equivalent to the per-record ``bisect_right`` insertions: within
        a token, existing postings all hold smaller positions than the
        batch's, so an old-first-on-ties two-pointer merge reproduces
        exactly the (size, insertion order) ordering sequential upserts
        would have produced — one sort + one merge per touched token
        instead of one list insertion per (record, prefix token).
        """
        postings = self._delta.postings
        for token, new_pairs in staged.items():
            # Equal sizes sort by position, which is insertion order.
            new_pairs.sort()
            entry = postings.get(token)
            if entry is None:
                postings[token] = (
                    [size for size, _ in new_pairs],
                    [position for _, position in new_pairs],
                )
                continue
            sizes, positions = entry
            merged_sizes: list[int] = []
            merged_positions: list[int] = []
            i = j = 0
            while i < len(sizes) and j < len(new_pairs):
                if sizes[i] <= new_pairs[j][0]:
                    merged_sizes.append(sizes[i])
                    merged_positions.append(positions[i])
                    i += 1
                else:
                    merged_sizes.append(new_pairs[j][0])
                    merged_positions.append(new_pairs[j][1])
                    j += 1
            merged_sizes.extend(sizes[i:])
            merged_positions.extend(positions[i:])
            merged_sizes.extend(size for size, _ in new_pairs[j:])
            merged_positions.extend(position for _, position in new_pairs[j:])
            sizes[:] = merged_sizes
            positions[:] = merged_positions

    def upsert_many(self, items) -> int:
        """Bulk :meth:`upsert`: one lock acquisition, one postings merge.

        ``items`` is an iterable of ``(row_key, value)``, applied in
        order with sequential semantics (later duplicates win, missing
        values tombstone) — the index state afterwards is identical to
        looping :meth:`upsert`, but delta postings are sorted and merged
        once per batch instead of insertion-sorted once per record.
        Returns the number of records indexed (rest degenerated to
        deletes).
        """
        items = list(items)
        with self._lock:
            staged: dict[int, list[tuple[int, int]]] = {}
            indexed = 0
            for row_key, value in items:
                self._ops.append(("u", row_key, value))
                indexed += self._upsert_locked(row_key, value, staged)
                self._generation += 1
            self._merge_staged_postings_locked(staged)
            tombstones = len(self._base_tombstones) + len(self._delta.tombstones)
        registry = get_registry()
        registry.counter("index_delta_ops_total", op="upsert").inc(len(items))
        registry.gauge("index_tombstones", index=self.name).set(tombstones)
        return indexed

    def delete_many(self, row_keys) -> int:
        """Bulk :meth:`delete` under one lock; returns how many existed."""
        row_keys = list(row_keys)
        with self._lock:
            removed = 0
            for row_key in row_keys:
                self._ops.append(("d", row_key))
                removed += self._tombstone_locked(row_key)
                self._generation += 1
            tombstones = len(self._base_tombstones) + len(self._delta.tombstones)
        registry = get_registry()
        registry.counter("index_delta_ops_total", op="delete").inc(len(row_keys))
        registry.gauge("index_tombstones", index=self.name).set(tombstones)
        return removed

    def _tombstone_locked(self, row_key: Any) -> bool:
        position = self._delta.positions.pop(row_key, None)
        if position is not None:
            self._delta.tombstones.add(position)
            return True
        position = self._base.positions.get(row_key)
        if position is not None and position not in self._base_tombstones:
            self._base_tombstones.add(position)
            return True
        return False

    def _encode_indexed(self, tokens: set[str]) -> tuple[int, ...]:
        """Ids for an *indexed* record: unseen tokens extend the universe.

        Extension ids start past the base universe, so the live total
        order extends the base order — the invariant that keeps base
        prefixes (computed at build time) valid prefixes forever.
        Unseen tokens are assigned in sorted order so replaying a
        persisted op log reproduces the exact same assignment.
        """
        universe = self._base.universe
        ext = self._delta.ext_ids
        ids = []
        unseen = []
        for token in tokens:
            if token in universe:
                ids.append(universe.token_id(token))
            else:
                known = ext.get(token)
                if known is not None:
                    ids.append(known)
                else:
                    unseen.append(token)
        base_size = len(universe)
        for token in sorted(unseen):
            token_id = base_size + len(ext)
            ext[token] = token_id
            ids.append(token_id)
        return tuple(sorted(ids))

    def _encode_query(self, tokens: set[str]) -> tuple[int, ...]:
        """Ids for a probe: tokens unknown to both segments are dropped.

        Dropping is lossless (they cannot overlap any indexed record)
        as long as scoring uses the query's true token count — the same
        ``left_size`` contract as :func:`probe_encoded`.
        """
        universe = self._base.universe
        ext = self._delta.ext_ids
        ids = []
        for token in tokens:
            if token in universe:
                ids.append(universe.token_id(token))
            else:
                known = ext.get(token)
                if known is not None:
                    ids.append(known)
        return tuple(sorted(ids))

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def search(self, value: Any) -> tuple[list[tuple[Any, float]], int]:
        """Probe one value against base + delta, skipping tombstones.

        Returns ``(matches, n_candidates)``; matches are ``(key, score)``
        in canonical record order (base positions, then delta insertion
        order) — the same order a from-scratch rebuild would emit — and
        scores are bit-identical to the batch join's.
        """
        prepared = self._prepare(value)
        if prepared is None:
            return [], 0
        token_set = set(self.tokenizer.tokenize_cached(prepared))
        with self._lock:
            return self._search_locked(token_set)

    def _search_locked(self, token_set: set[str]) -> tuple[list[tuple[Any, float]], int]:
        from repro.simjoin.joins import probe_encoded

        left_ids = self._encode_query(token_set)
        left_size = len(token_set)
        base = self._base
        matches, n_candidates = probe_encoded(
            left_ids,
            left_size,
            base.index,
            base.enc,
            base.masks,
            self._scorer,
            self._overlap_bound,
            self.measure,
            self.threshold,
            skip=self._base_tombstones or None,
        )
        delta_matches, delta_candidates = self._probe_delta_locked(left_ids, left_size)
        if delta_candidates or delta_matches:
            matches = matches + delta_matches
        return matches, n_candidates + delta_candidates

    def _probe_delta_locked(
        self, left_ids: tuple[int, ...], left_size: int
    ) -> tuple[list[tuple[Any, float]], int]:
        """Probe the delta segment alone (``([], 0)`` when it is empty)."""
        from repro.simjoin.joins import probe_encoded

        delta = self._delta
        if not delta.enc:
            return [], 0
        started = time.perf_counter()
        delta_matches, delta_candidates = probe_encoded(
            left_ids,
            left_size,
            delta.postings,
            delta.enc,
            delta.masks,
            self._scorer,
            self._overlap_bound,
            self.measure,
            self.threshold,
            skip=delta.tombstones or None,
        )
        get_registry().histogram("index_delta_probe_seconds").observe(
            time.perf_counter() - started
        )
        return delta_matches, delta_candidates

    def search_batch(self, values) -> list[tuple[list[tuple[Any, float]], int]]:
        """Probe many values in one call; one batched base-segment kernel.

        Returns one ``(matches, n_candidates)`` pair per value, each
        byte-identical to :meth:`search` on that value.  When the array
        backend is available (and the index's ``kernel`` setting allows
        it) the base segment is probed with one columnar
        :func:`~repro.simjoin.joins.probe_encoded_batch` call for the
        whole batch — the amortization :class:`repro.serve.MatchServer`'s
        micro-batching exists for; the (small, mutable) delta segment is
        probed per query under the same lock snapshot.
        """
        from repro.perf.arrays import choose_backend, observe_kernel_batch

        started = time.perf_counter()
        token_sets = []
        for value in values:
            prepared = self._prepare(value)
            token_sets.append(
                None
                if prepared is None
                else set(self.tokenizer.tokenize_cached(prepared))
            )
        live_queries = [ts for ts in token_sets if ts is not None]
        with self._lock:
            backend = choose_backend(
                self.kernel, len(live_queries), len(self._base.enc)
            )
            array_index = (
                self._base_array_index_locked() if backend == "array" else None
            )
            if array_index is None:
                return [
                    ([], 0) if ts is None else self._search_locked(ts)
                    for ts in token_sets
                ]
            from repro.simjoin.joins import probe_encoded_batch

            encoded = [
                (self._encode_query(ts), len(ts)) for ts in live_queries
            ]
            base_results = probe_encoded_batch(
                encoded,
                array_index,
                self.measure,
                self.threshold,
                skip=self._base_tombstones or None,
            )
            results: list[tuple[list[tuple[Any, float]], int]] = []
            at = 0
            n_candidates_total = 0
            for ts in token_sets:
                if ts is None:
                    results.append(([], 0))
                    continue
                left_ids, left_size = encoded[at]
                matches, n_candidates = base_results[at]
                at += 1
                delta_matches, delta_candidates = self._probe_delta_locked(
                    left_ids, left_size
                )
                if delta_matches or delta_candidates:
                    matches = matches + delta_matches
                    n_candidates += delta_candidates
                n_candidates_total += n_candidates
                results.append((matches, n_candidates))
        observe_kernel_batch(
            "live_search",
            len(token_sets),
            n_candidates_total,
            time.perf_counter() - started,
        )
        return results

    def join_table(self, table: Table, l_key: str, l_column: str) -> Table:
        """Join a probe table against the live corpus.

        Returns the same ``(_id, l_id, r_id, score)`` table — same rows,
        same order, same floats — as ``set_sim_join(table, self.to_table(),
        ...)`` under this index's configuration.  The whole scan runs
        under the lock, so it sees one consistent snapshot.
        """
        from repro.simjoin.joins import _result_table

        table.require_columns([l_key, l_column])
        view = self._view(table, l_key, l_column)
        tc = self._store.tokenized_column(view, l_key, l_column, self.tokenizer)
        rows: list[tuple] = []
        with self._lock:
            for row_key, value in tc.records:
                matches, _ = self._search_locked(tc.token_sets[value])
                for r_id, score in matches:
                    rows.append((row_key, r_id, score))
        return _result_table(rows)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> dict[str, Any]:
        """Fold the delta into a fresh base segment; returns stats.

        Three phases: snapshot the live records under the lock, rebuild
        the artifact chain *outside* it (readers keep probing the old
        segments, writers keep appending), then swap — replaying any
        operations that raced the rebuild onto the new, empty delta.
        """
        with self._lock:
            if self._compacting:
                raise ServiceError(f"live index {self.name!r} is already compacting")
            self._compacting = True
            records = self._records_locked()
            ops_mark = len(self._ops)
        try:
            table = Table(
                {
                    self.key: [row_key for row_key, _ in records],
                    self.column: [value for _, value in records],
                }
            )
            with trace_span("live_compact", index=self.name, rows=len(records)):
                base = self._build_base(table)
        except BaseException:
            with self._lock:
                self._compacting = False
            raise
        with self._lock:
            raced = self._ops[ops_mark:]
            self._base = base
            self._base_tombstones = set()
            self._delta = _DeltaSegment(with_masks=base.masks is not None)
            self._ops = list(raced)
            for op in raced:
                self._apply_locked(op)
            self._compacting = False
            self._compactions += 1
            self._generation += 1
            stats = self._stats_locked()
        registry = get_registry()
        registry.counter("index_compactions_total", index=self.name).inc()
        registry.gauge("index_tombstones", index=self.name).set(stats["tombstones"])
        return stats

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _records_locked(self) -> list[tuple[Any, str]]:
        records = [
            (row_key, value)
            for position, (row_key, value) in enumerate(self._base.records)
            if position not in self._base_tombstones
        ]
        delta = self._delta
        records.extend(
            (row_key, delta.values[position])
            for position, (row_key, _) in enumerate(delta.enc)
            if position not in delta.tombstones
        )
        return records

    def records(self) -> list[tuple[Any, str]]:
        """The live ``(key, value)`` records in canonical order."""
        with self._lock:
            return self._records_locked()

    def to_table(self) -> Table:
        """The live records as a fresh table (the rebuild reference)."""
        records = self.records()
        return Table(
            {
                self.key: [row_key for row_key, _ in records],
                self.column: [value for _, value in records],
            }
        )

    def __contains__(self, row_key: Any) -> bool:
        with self._lock:
            if row_key in self._delta.positions:
                return True
            position = self._base.positions.get(row_key)
            return position is not None and position not in self._base_tombstones

    def __len__(self) -> int:
        with self._lock:
            live_base = len(self._base.records) - len(self._base_tombstones)
            return live_base + len(self._delta.positions)

    @property
    def generation(self) -> int:
        """Monotonic change counter: bumps on every mutation and compaction."""
        with self._lock:
            return self._generation

    def _stats_locked(self) -> dict[str, Any]:
        delta = self._delta
        return {
            "name": self.name,
            "generation": self._generation,
            "compactions": self._compactions,
            "base_rows": len(self._base.records),
            "delta_rows": len(delta.positions),
            "tombstones": len(self._base_tombstones) + len(delta.tombstones),
            "live_rows": len(self._base.records)
            - len(self._base_tombstones)
            + len(delta.positions),
            "universe_size": len(self._base.universe) + len(delta.ext_ids),
            "delta_bytes": len(pickle.dumps(self._ops, protocol=pickle.HIGHEST_PROTOCOL)),
            "measure": self.measure,
            "threshold": self.threshold,
        }

    def stats(self) -> dict[str, Any]:
        """Point-in-time segment stats (generation, rows, tombstones...)."""
        with self._lock:
            return self._stats_locked()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"<LiveIndex {self.name!r} gen={stats['generation']} "
            f"base={stats['base_rows']} delta={stats['delta_rows']} "
            f"tombstones={stats['tombstones']}>"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _directory(self, directory: str | Path | None) -> Path:
        if directory is not None:
            return Path(directory)
        if self._store.cache_dir is None:
            raise ConfigurationError(
                "no directory given and the live index's store has no cache_dir"
            )
        return self._store.cache_dir

    def save(self, directory: str | Path | None = None) -> Path:
        """Persist as ``live-<name>.pkl`` plus a JSON manifest.

        The state is the *replayable* form — the base snapshot's records
        and the op log since the last compaction — so loading rebuilds
        the base through the store (warm from its disk tier when the
        artifacts are persisted) and replays the log.
        """
        directory = self._directory(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with self._lock:
            state = {
                "format": LIVE_FORMAT_VERSION,
                "name": self.name,
                "key": self.key,
                "column": self.column,
                "tokenizer": self.tokenizer,
                "normalize": self._normalize,
                "measure": self.measure,
                "threshold": self.threshold,
                "kernel": self.kernel,
                "base_records": list(self._base.records),
                "ops": list(self._ops),
                "generation": self._generation,
                "compactions": self._compactions,
            }
            manifest = self._stats_locked()
        path = directory / f"live-{self.name}.pkl"
        atomic_write_bytes(path, pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
        atomic_write_bytes(
            directory / f"live-{self.name}.json",
            (json.dumps(manifest, indent=2, default=str) + "\n").encode("utf-8"),
        )
        return path

    @classmethod
    def load(
        cls,
        name: str,
        store: IndexStore | None = None,
        directory: str | Path | None = None,
    ) -> "LiveIndex":
        """Restore a persisted live index (see :meth:`save`)."""
        store = store if store is not None else get_index_store()
        if directory is None:
            if store.cache_dir is None:
                raise ConfigurationError(
                    "no directory given and the store has no cache_dir"
                )
            directory = store.cache_dir
        path = Path(directory) / f"live-{name}.pkl"
        try:
            state = pickle.loads(path.read_bytes())
            if state["format"] != LIVE_FORMAT_VERSION:
                raise ConfigurationError(
                    f"live index {name!r} uses format {state['format']}, "
                    f"expected {LIVE_FORMAT_VERSION}"
                )
        except ConfigurationError:
            raise
        except Exception as exc:
            raise ConfigurationError(f"cannot load live index from {path}: {exc}") from exc
        base_table = Table(
            {
                state["key"]: [row_key for row_key, _ in state["base_records"]],
                state["column"]: [value for _, value in state["base_records"]],
            }
        )
        live = cls(
            state["key"],
            state["column"],
            tokenizer=state["tokenizer"],
            measure=state["measure"],
            threshold=state["threshold"],
            kernel=state["kernel"],
            normalize=state["normalize"],
            store=store,
            name=state["name"],
            base_table=base_table,
        )
        with live._lock:
            for op in state["ops"]:
                live._apply_locked(op)
            live._ops = list(state["ops"])
            live._generation = state["generation"]
            live._compactions = state["compactions"]
        return live


def list_live_indexes(directory: str | Path) -> list[dict[str, Any]]:
    """The persisted live-index manifests under a cache directory."""
    directory = Path(directory)
    manifests: list[dict[str, Any]] = []
    if not directory.exists():
        return manifests
    for path in sorted(directory.glob("live-*.json")):
        try:
            manifests.append(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, ValueError):
            continue
    return manifests
