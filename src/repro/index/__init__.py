"""repro.index — reusable, persistent index artifacts for the hot paths.

The platform-service answer to "every command rebuilds its own index":
a :class:`IndexStore` materializes tokenizations, token-id encodings,
prefix-filter postings, verification masks, and q-gram indexes once per
*content fingerprint* and serves them to every sim join, blocker,
blocking-rule execution, and Falcon/Smurf iteration that asks again —
in memory within a process, and from an atomic on-disk cache across
runs.  See :mod:`repro.index.store` for the artifact chain and
:mod:`repro.index.fingerprints` for the keying scheme.

On top of the immutable artifacts, :class:`LiveIndex`
(:mod:`repro.index.delta`) adds the mutable half: a base + delta
two-layer index supporting upsert/delete/compact with the contract that
an incrementally-maintained index returns exactly what a from-scratch
rebuild over its current records would.
"""

from repro.index.ann import AnnIndex
from repro.index.delta import (
    LIVE_FORMAT_VERSION,
    LiveIndex,
    list_live_indexes,
)
from repro.index.fingerprints import (
    FORMAT_VERSION,
    column_fingerprint,
    combine,
    tokenizer_fingerprint,
    vectorizer_fingerprint,
)
from repro.index.store import (
    ARTIFACT_KINDS,
    CACHE_READ_ERRORS,
    GramIndex,
    HashedColumn,
    IndexStore,
    PairEncoding,
    PrefixIndex,
    TokenizedColumn,
    VectorPair,
    get_index_store,
    set_index_store,
    use_index_store,
)

__all__ = [
    "ARTIFACT_KINDS",
    "AnnIndex",
    "CACHE_READ_ERRORS",
    "FORMAT_VERSION",
    "GramIndex",
    "HashedColumn",
    "IndexStore",
    "LIVE_FORMAT_VERSION",
    "LiveIndex",
    "PairEncoding",
    "PrefixIndex",
    "TokenizedColumn",
    "VectorPair",
    "column_fingerprint",
    "combine",
    "get_index_store",
    "list_live_indexes",
    "set_index_store",
    "tokenizer_fingerprint",
    "use_index_store",
    "vectorizer_fingerprint",
]
