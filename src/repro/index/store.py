"""Build-once/probe-many index artifacts shared by every hot path.

Every ``set_sim_join``, ``OverlapBlocker`` run, blocking-rule execution,
and Falcon/Smurf iteration needs the same expensive intermediates:
string records, per-value token sets, a :class:`TokenUniverse` with
token-id encodings, size-sorted prefix-filter postings, verification
bitmasks, and q-gram count indexes.  Before this module each call
rebuilt them from scratch; the :class:`IndexStore` materializes each
artifact once under a *content fingerprint* and serves every later call
— the same table content probed again (even through a freshly projected
view, as the blockers and rule executors do) is a cache hit, while a
mutated table or a different tokenizer changes the fingerprint and can
never be served a stale index.

Artifacts form a dependency chain mirroring the join pipeline, each
keyed by the digests of what it was built from::

    records(table, key, column)                     "records"
      -> tokenized column (token sets per value)    "tokens"
          -> pair encoding (universe + id tuples)   "encoding"
              -> prefix postings index              "prefix"
              -> verification bitmasks              "masks"
              -> CSR token-incidence matrices       "arrays"
                  -> transposed probe-ready corpus  "arrayindex"
      -> q-gram bags / count-filter index           "grambags"/"gramindex"
      -> hashed n-gram count vectors                "vectors"
          -> joint (IDF-weighted) vector space      "vecpair"
              -> banded-LSH approximate-NN index    "ann"

The ``arrays``/``arrayindex`` pair is the columnar ("array") kernel
backend of :mod:`repro.perf.arrays`: the same encoded records as
contiguous CSR matrices, built lazily only when a caller resolves
``kernel="array"`` (or ``"auto"`` picks it), and byte-identical in
output to the dict chain it sits beside.

The vector branch backs :class:`repro.blocking.vector.VectorBlocker`:
embeddings from :mod:`repro.text.vectorize` and the
:class:`repro.index.ann.AnnIndex` ride the same LRU + disk tiers,
per-digest build locks, and warm-reload semantics as the token-side
artifacts.

Two tiers: an in-process LRU (shared by default across all callers via
:func:`get_index_store`), and an optional on-disk cache (``cache_dir``,
or the ``REPRO_INDEX_CACHE`` environment variable for the process
default) written atomically so repeated workflow runs and
``CheckpointedRun`` resumes start warm.  A corrupted or truncated cache
file is treated as a miss and rebuilt, never trusted.

Observability: ``index_builds_total``/``index_reuses_total`` counters
(labelled by artifact ``kind``; reuses also carry ``tier="memory"`` or
``"disk"``), the ``index_build_seconds`` histogram, and
``index_disk_errors_total`` for corrupt-file fallbacks.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections import Counter, OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.index.ann import AnnIndex
from repro.index.fingerprints import (
    column_fingerprint,
    combine,
    tokenizer_fingerprint,
    vectorizer_fingerprint,
)
from repro.obs import get_registry
from repro.perf.kernels import token_mask
from repro.perf.tokens import TokenUniverse
from repro.runtime.checkpoint import atomic_write_bytes
from repro.table.schema import is_missing
from repro.table.table import Table
from repro.text.tokenizers import QgramTokenizer, Tokenizer
from repro.text.vectorize import (
    HashedNgramVectorizer,
    SparseVector,
    apply_idf,
    idf_weights,
    l2_normalize,
)

ARTIFACT_KINDS = (
    "records", "tokens", "encoding", "prefix", "masks", "arrays", "arrayindex",
    "grambags", "gramindex", "vectors", "vecpair", "ann",
)

#: Disk-tier read failures that mean "treat as a cache miss and rebuild":
#: unreadable files (``OSError``) and the unpickling failure modes the
#: ``pickle`` docs name for truncated/corrupt/stale data —
#: ``UnpicklingError``, ``EOFError``, ``AttributeError``/``ImportError``
#: (artifact class moved or renamed), ``IndexError`` and ``ValueError``
#: (mangled stream / unsupported protocol byte).  Anything else raising
#: out of a cache read is a real bug and must propagate, not vanish as a
#: silent rebuild.
CACHE_READ_ERRORS = (
    OSError,
    EOFError,
    pickle.UnpicklingError,
    AttributeError,
    ImportError,
    IndexError,
    ValueError,
)


class TokenizedColumn:
    """One column's records plus the token set of each distinct value."""

    __slots__ = ("key", "records", "token_sets")

    def __init__(
        self,
        key: str,
        records: list[tuple[Any, str]],
        token_sets: dict[str, set[str]],
    ):
        self.key = key
        self.records = records
        self.token_sets = token_sets


class PairEncoding:
    """A join pair's shared universe and per-record token-id tuples.

    ``left``/``right`` hold ``(row_key, ids)`` in record order; ids are
    sorted rarest-first, so a prefix is a slice.  The universe ranks by
    combined corpus frequency with one contribution per *record* (not
    per distinct value), byte-identical to what the join built inline.
    """

    __slots__ = ("key", "universe", "left", "right")

    def __init__(
        self,
        key: str,
        universe: TokenUniverse,
        left: list[tuple[Any, tuple[int, ...]]],
        right: list[tuple[Any, tuple[int, ...]]],
    ):
        self.key = key
        self.universe = universe
        self.left = left
        self.right = right


class PrefixIndex:
    """Token id -> (sizes, positions) postings sorted by right-set size."""

    __slots__ = ("key", "index")

    def __init__(self, key: str, index: dict[int, tuple[list[int], list[int]]]):
        self.key = key
        self.index = index


class GramIndex:
    """q-gram -> [(right position, gram count)] for the edit-join filter."""

    __slots__ = ("key", "index")

    def __init__(self, key: str, index: dict[str, list[tuple[int, int]]]):
        self.key = key
        self.index = index


class HashedColumn:
    """One column's records as hashed n-gram count vectors.

    ``records`` holds ``(row_key, raw count vector)`` in record order;
    records sharing a distinct value share one vector object (the
    sharing survives pickling, which memoizes references).
    """

    __slots__ = ("key", "records")

    def __init__(self, key: str, records: list[tuple[Any, SparseVector]]):
        self.key = key
        self.records = records


class VectorPair:
    """A join pair's records in one shared, similarity-ready vector space.

    Both sides' raw count vectors, IDF-weighted over the *combined*
    corpus (when ``idf`` was requested) and L2-normalized — the form
    :func:`repro.text.vectorize.cosine` and the ANN index consume.
    ``idf`` is the fitted bucket -> weight table (``None`` without IDF),
    kept so ad-hoc probe vectors can be projected into the same space.
    """

    __slots__ = ("key", "left", "right", "idf")

    def __init__(
        self,
        key: str,
        left: list[tuple[Any, SparseVector]],
        right: list[tuple[Any, SparseVector]],
        idf: dict[int, float] | None,
    ):
        self.key = key
        self.left = left
        self.right = right
        self.idf = idf


class IndexStore:
    """Two-tier (memory LRU + optional disk) cache of index artifacts.

    All artifacts are read-only once built; callers — including forked
    join shards, which inherit them by fork — must not mutate them.

    Thread-safety contract: the memory tier (the LRU ``OrderedDict``) is
    guarded by an ``RLock``, so concurrent probes — the long-lived
    :mod:`repro.serve` workers hammer one shared store from many threads
    — can never corrupt the eviction order or crash in
    ``move_to_end``/``popitem``.  Artifact *builds* run outside that
    lock, deduplicated by a per-digest build lock: when two threads miss
    on the same digest, one builds while the other waits, then takes the
    result from the memory tier — each digest builds exactly once (one
    ``index_builds_total`` increment; the loser counts a memory reuse),
    while builds of *unrelated* artifacts never serialize behind one
    another.  Nested builds (``gram_index`` -> ``gram_bags``,
    ``tokenized_column`` -> ``_records``) take distinct digest locks and
    the dependency graph is acyclic, so the per-digest locks cannot
    deadlock.
    """

    def __init__(self, cache_dir: str | Path | None = None, max_entries: int = 256):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_entries = max(1, int(max_entries))
        self._memory: OrderedDict[str, Any] = OrderedDict()
        # RLock: accessor builds nest (`gram_index` -> `gram_bags`,
        # `tokenized_column` -> `_records`), so a thread can re-enter.
        self._lock = threading.RLock()
        # digest -> plain Lock serializing concurrent builds of that one
        # artifact; entries are created and discarded under `self._lock`.
        self._building: dict[str, threading.Lock] = {}

    # ------------------------------------------------------------------
    # Cache machinery
    # ------------------------------------------------------------------
    def _path(self, kind: str, digest: str) -> Path:
        return self.cache_dir / f"{kind}-{digest}.pkl"

    def _remember(self, digest: str, artifact: Any) -> None:
        with self._lock:
            self._memory[digest] = artifact
            self._memory.move_to_end(digest)
            while len(self._memory) > self.max_entries:
                self._memory.popitem(last=False)

    def _lookup_memory(self, kind: str, digest: str) -> Any:
        registry = get_registry()
        with self._lock:
            artifact = self._memory.get(digest)
            if artifact is not None:
                self._memory.move_to_end(digest)
        if artifact is not None:
            registry.counter("index_reuses_total", kind=kind, tier="memory").inc()
        return artifact

    def _get(self, kind: str, digest: str, build, persist: bool = True) -> Any:
        registry = get_registry()
        artifact = self._lookup_memory(kind, digest)
        if artifact is not None:
            return artifact
        # Per-digest build lock: the first thread to miss becomes the
        # builder; later threads block here, then find the artifact in
        # the memory tier.  Each digest is built (and counted) once.
        with self._lock:
            build_lock = self._building.get(digest)
            if build_lock is None:
                build_lock = self._building[digest] = threading.Lock()
        try:
            with build_lock:
                artifact = self._lookup_memory(kind, digest)
                if artifact is not None:
                    return artifact
                if persist and self.cache_dir is not None:
                    path = self._path(kind, digest)
                    if path.exists():
                        try:
                            with path.open("rb") as handle:
                                artifact = pickle.load(handle)
                        except CACHE_READ_ERRORS:
                            # Truncated/corrupt cache files fall back to a
                            # rebuild (and the rebuilt artifact is persisted
                            # below, replacing the bad file).  Only the
                            # known read/unpickle failure modes are
                            # swallowed — and every swallow is counted —
                            # so a logic bug here cannot vanish silently.
                            registry.counter(
                                "index_disk_errors_total", kind=kind
                            ).inc()
                            artifact = None
                        if artifact is not None:
                            self._remember(digest, artifact)
                            registry.counter(
                                "index_reuses_total", kind=kind, tier="disk"
                            ).inc()
                            return artifact
                started = time.perf_counter()
                artifact = build()
                registry.counter("index_builds_total", kind=kind).inc()
                registry.histogram("index_build_seconds", kind=kind).observe(
                    time.perf_counter() - started
                )
                self._remember(digest, artifact)
                if persist and self.cache_dir is not None:
                    self.cache_dir.mkdir(parents=True, exist_ok=True)
                    atomic_write_bytes(
                        self._path(kind, digest),
                        pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL),
                    )
                return artifact
        finally:
            with self._lock:
                self._building.pop(digest, None)

    # ------------------------------------------------------------------
    # Artifact accessors (the join/blocker building blocks)
    # ------------------------------------------------------------------
    def string_records(self, table: Table, key: str, column: str) -> list[tuple]:
        """``(row_key, str value)`` per row with a non-missing value."""
        table.require_columns([key, column])
        return self._records(column_fingerprint(table, key, column), table, key, column)

    def _records(self, col_fp: str, table: Table, key: str, column: str) -> list[tuple]:
        def build() -> list[tuple]:
            return [
                (row_key, str(value))
                for row_key, value in zip(table.column(key), table.column(column))
                if not is_missing(value)
            ]

        return self._get("records", combine("records", col_fp), build)

    def tokenized_column(
        self, table: Table, key: str, column: str, tokenizer: Tokenizer
    ) -> TokenizedColumn:
        """Records plus one token set per distinct value of the column."""
        table.require_columns([key, column])
        col_fp = column_fingerprint(table, key, column)
        digest = combine("tokens", col_fp, tokenizer_fingerprint(tokenizer))

        def build() -> TokenizedColumn:
            records = self._records(col_fp, table, key, column)
            token_sets: dict[str, set[str]] = {}
            for _, value in records:
                if value not in token_sets:
                    token_sets[value] = set(tokenizer.tokenize_cached(value))
            return TokenizedColumn(digest, records, token_sets)

        return self._get("tokens", digest, build)

    def pair_encoding(self, left: TokenizedColumn, right: TokenizedColumn) -> PairEncoding:
        """Shared :class:`TokenUniverse` and encoded records for a join pair."""
        digest = combine("encoding", left.key, right.key)

        def build() -> PairEncoding:
            universe = TokenUniverse(
                side.token_sets[value]
                for side in (left, right)
                for _, value in side.records
            )
            encoded: dict[str, tuple[int, ...]] = {}

            def encode(side: TokenizedColumn, value: str) -> tuple[int, ...]:
                ids = encoded.get(value)
                if ids is None:
                    ids = encoded[value] = universe.encode(side.token_sets[value])
                return ids

            return PairEncoding(
                digest,
                universe,
                [(row_key, encode(left, value)) for row_key, value in left.records],
                [(row_key, encode(right, value)) for row_key, value in right.records],
            )

        return self._get("encoding", digest, build)

    def prefix_index(
        self,
        encoding: PairEncoding,
        measure: str,
        threshold: float,
        use_prefix_filter: bool = True,
    ) -> PrefixIndex:
        """Size-sorted postings over the right side's (prefix) tokens."""
        from repro.simjoin.filters import prefix_length

        digest = combine("prefix", encoding.key, measure, threshold, use_prefix_filter)

        def build() -> PrefixIndex:
            postings_by_token: dict[int, list[tuple[int, int]]] = {}
            for position, (_, tokens) in enumerate(encoding.right):
                size = len(tokens)
                if not size:
                    continue
                prefix = (
                    tokens[: prefix_length(measure, threshold, size)]
                    if use_prefix_filter
                    else tokens
                )
                for token in prefix:
                    postings_by_token.setdefault(token, []).append((size, position))
            index: dict[int, tuple[list[int], list[int]]] = {}
            for token, postings in postings_by_token.items():
                postings.sort()
                index[token] = ([s for s, _ in postings], [p for _, p in postings])
            return PrefixIndex(digest, index)

        return self._get("prefix", digest, build)

    def right_masks(self, encoding: PairEncoding) -> list[int]:
        """Verification bitmasks for the right side (mask kernel)."""
        return self._get(
            "masks",
            combine("masks", encoding.key),
            lambda: [token_mask(tokens) for _, tokens in encoding.right],
        )

    def pair_arrays(self, encoding: PairEncoding, side: str = "left"):
        """One side of a pair encoding as a CSR token-incidence matrix.

        Returns a :class:`repro.perf.arrays.ArrayRecords`; requires the
        array stack (numpy + scipy) and raises
        :class:`~repro.exceptions.ConfigurationError` without it, so the
        dict chain never pays the import.
        """
        from repro.perf import arrays

        if side not in ("left", "right"):
            raise ValueError(f"side must be 'left' or 'right', got {side!r}")
        arrays.require_arrays()
        digest = combine("arrays", encoding.key, side)

        def build():
            records = encoding.right if side == "right" else encoding.left
            return arrays.build_array_records(
                digest, records, len(encoding.universe)
            )

        return self._get("arrays", digest, build)

    def array_index(
        self,
        encoding: PairEncoding,
        measure: str,
        threshold: float,
        use_prefix_filter: bool = True,
        side: str = "right",
    ):
        """Probe-ready transposed CSR corpus for the batched array kernel.

        The columnar twin of :meth:`prefix_index` (same parameters, same
        candidate semantics); returns a
        :class:`repro.perf.arrays.ArrayIndex`.
        """
        from repro.perf import arrays

        arrays.require_arrays()
        digest = combine(
            "arrayindex", encoding.key, side, measure, threshold, use_prefix_filter
        )

        def build():
            return arrays.build_array_index(
                digest,
                self.pair_arrays(encoding, side=side),
                measure,
                threshold,
                use_prefix_filter,
            )

        return self._get("arrayindex", digest, build)

    def gram_bags(self, table: Table, key: str, column: str, q: int) -> dict[str, Counter]:
        """Unpadded q-gram multiset per distinct value of the column."""
        table.require_columns([key, column])
        col_fp = column_fingerprint(table, key, column)
        digest = combine("grambags", col_fp, q)

        def build() -> dict[str, Counter]:
            tokenizer = QgramTokenizer(q=q, padding=False)
            records = self._records(col_fp, table, key, column)
            bags: dict[str, Counter] = {}
            for _, value in records:
                if value not in bags:
                    bags[value] = Counter(tokenizer.tokenize_cached(value))
            return bags

        return self._get("grambags", digest, build)

    def gram_index(self, table: Table, key: str, column: str, q: int) -> GramIndex:
        """Inverted q-gram count index over the column (edit-join filter)."""
        table.require_columns([key, column])
        col_fp = column_fingerprint(table, key, column)
        digest = combine("gramindex", col_fp, q)

        def build() -> GramIndex:
            records = self._records(col_fp, table, key, column)
            bags = self.gram_bags(table, key, column, q)
            index: dict[str, list[tuple[int, int]]] = {}
            for position, (_, value) in enumerate(records):
                for gram, count in bags[value].items():
                    index.setdefault(gram, []).append((position, count))
            return GramIndex(digest, index)

        return self._get("gramindex", digest, build)

    # ------------------------------------------------------------------
    # Vector-branch accessors (the ANN blocking building blocks)
    # ------------------------------------------------------------------
    def hashed_column(
        self,
        table: Table,
        key: str,
        column: str,
        vectorizer: HashedNgramVectorizer,
    ) -> HashedColumn:
        """Hashed n-gram count vectors per record of the column."""
        table.require_columns([key, column])
        col_fp = column_fingerprint(table, key, column)
        digest = combine("vectors", col_fp, vectorizer_fingerprint(vectorizer))

        def build() -> HashedColumn:
            records = self._records(col_fp, table, key, column)
            by_value: dict[str, SparseVector] = {}
            embedded: list[tuple[Any, SparseVector]] = []
            for row_key, value in records:
                vector = by_value.get(value)
                if vector is None:
                    vector = by_value[value] = vectorizer.embed(value)
                embedded.append((row_key, vector))
            return HashedColumn(digest, embedded)

        return self._get("vectors", digest, build)

    def vector_pair(
        self, left: HashedColumn, right: HashedColumn, idf: bool = True
    ) -> VectorPair:
        """Both sides projected into one (optionally IDF-weighted) space."""
        digest = combine("vecpair", left.key, right.key, idf)

        def build() -> VectorPair:
            weights = (
                idf_weights(
                    vector
                    for side in (left, right)
                    for _, vector in side.records
                )
                if idf
                else None
            )
            # Records sharing a raw vector object share the normalized
            # one too (id-keyed memo; valid within this build).
            memo: dict[int, SparseVector] = {}

            def project(side: HashedColumn) -> list[tuple[Any, SparseVector]]:
                projected = []
                for row_key, vector in side.records:
                    normalized = memo.get(id(vector))
                    if normalized is None:
                        weighted = (
                            apply_idf(vector, weights)
                            if weights is not None
                            else vector
                        )
                        normalized = memo[id(vector)] = l2_normalize(weighted)
                    projected.append((row_key, normalized))
                return projected

            return VectorPair(digest, project(left), project(right), weights)

        return self._get("vecpair", digest, build)

    def ann_index(
        self,
        pair: VectorPair,
        side: str = "right",
        n_bands: int = 16,
        band_bits: int = 6,
        seed: int = 0,
    ) -> AnnIndex:
        """Banded-LSH index over one side of a :class:`VectorPair`."""
        if side not in ("left", "right"):
            raise ValueError(f"side must be 'left' or 'right', got {side!r}")
        # "sig2" is the signature-computation version: signatures now
        # accumulate buckets in ascending order (so scalar and batched
        # computation agree bit-for-bit), which can flip near-zero band
        # bits relative to v1 — salting the digest retires any persisted
        # v1 index instead of trusting it.
        digest = combine("ann", "sig2", pair.key, side, n_bands, band_bits, seed)

        def build() -> AnnIndex:
            records = pair.right if side == "right" else pair.left
            return AnnIndex(
                digest, records, n_bands=n_bands, band_bits=band_bits, seed=seed
            )

        return self._get("ann", digest, build)

    # ------------------------------------------------------------------
    # Introspection and maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and the disk tier with ``disk=True``).

        The disk sweep also removes persisted live-index segments
        (``live-*.pkl`` and their ``live-*.json`` manifests, written by
        :meth:`repro.index.delta.LiveIndex.save`).
        """
        with self._lock:
            self._memory.clear()
        if disk and self.cache_dir is not None and self.cache_dir.exists():
            for pattern in ("*.pkl", "live-*.json"):
                for path in self.cache_dir.glob(pattern):
                    try:
                        path.unlink()
                    except OSError:
                        pass

    def disk_artifacts(self) -> list[dict[str, Any]]:
        """One row per persisted artifact: kind, digest, size in bytes.

        Live-index segments (``live-*``) are not fingerprinted artifacts
        and are listed by :func:`repro.index.delta.list_live_indexes`
        instead.
        """
        rows: list[dict[str, Any]] = []
        if self.cache_dir is None or not self.cache_dir.exists():
            return rows
        for path in sorted(self.cache_dir.glob("*.pkl")):
            if path.name.startswith("live-"):
                continue
            kind, _, digest = path.stem.partition("-")
            rows.append(
                {
                    "kind": kind,
                    "digest": digest,
                    "bytes": path.stat().st_size,
                    "file": path.name,
                }
            )
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f", cache_dir={str(self.cache_dir)!r}" if self.cache_dir else ""
        return f"<IndexStore {len(self._memory)} artifacts in memory{where}>"


# ----------------------------------------------------------------------
# Process-default store
# ----------------------------------------------------------------------
_default_store: IndexStore | None = None


def get_index_store() -> IndexStore:
    """The process-wide store every join and blocker consults.

    Created lazily; honours the ``REPRO_INDEX_CACHE`` environment
    variable as its disk cache directory.
    """
    global _default_store
    if _default_store is None:
        _default_store = IndexStore(
            cache_dir=os.environ.get("REPRO_INDEX_CACHE") or None
        )
    return _default_store


def set_index_store(store: IndexStore | None) -> IndexStore | None:
    """Swap the process-default store; returns the previous one."""
    global _default_store
    previous = _default_store
    _default_store = store
    return previous


@contextmanager
def use_index_store(store: IndexStore | None = None) -> Iterator[IndexStore]:
    """Scope the process-default store (a fresh in-memory one if ``None``)."""
    scoped = store if store is not None else IndexStore()
    previous = set_index_store(scoped)
    try:
        yield scoped
    finally:
        set_index_store(previous)
