"""Self-containment validators.

The paper's running example (Section 4.1): a command Z is about to operate
on candidate set C and needs the FK constraint between C and base table A
to be true.  Because some other tool may have deleted rows from A without
updating the catalog, Z first *checks* the constraint; if it no longer
holds, Z warns and stops rather than silently computing garbage.  These
functions implement those checks for all downstream commands.
"""

from __future__ import annotations

import warnings

from repro.catalog.catalog import Catalog, TableMetadata, get_catalog
from repro.exceptions import ForeignKeyConstraintError, KeyConstraintError
from repro.table.table import Table


class StaleMetadataWarning(UserWarning):
    """Issued when catalog metadata is found to be stale but tolerable."""


def check_fk_constraint(
    child: Table, fk_column: str, parent: Table, parent_key: str
) -> None:
    """Verify every FK value in ``child`` exists as a key in ``parent``.

    Raises :class:`ForeignKeyConstraintError` on dangling references and
    :class:`KeyConstraintError` if the parent key itself is invalid.
    """
    parent.validate_key(parent_key)
    parent_keys = set(parent.column(parent_key))
    dangling = [v for v in child.column(fk_column) if v not in parent_keys]
    if dangling:
        raise ForeignKeyConstraintError(
            f"{len(dangling)} value(s) in {fk_column!r} have no matching "
            f"{parent_key!r} in the parent table (e.g. {dangling[:3]})"
        )


def validate_candset(
    candset: Table,
    catalog: Catalog | None = None,
    strict: bool = True,
) -> TableMetadata:
    """Validate a candidate set's full metadata before a tool uses it.

    Checks the candidate set's own key and both FK constraints into its
    base tables.  With ``strict=True`` (the default) a violated constraint
    raises; with ``strict=False`` it instead emits a
    :class:`StaleMetadataWarning` and continues — the paper notes tools may
    choose either, depending on the nature of the command.

    Returns the validated :class:`TableMetadata` record.
    """
    cat = catalog if catalog is not None else get_catalog()
    meta = cat.get_candset_metadata(candset)
    try:
        candset.validate_key(meta.key)
        check_fk_constraint(candset, meta.fk_ltable, meta.ltable, cat.get_key(meta.ltable))
        check_fk_constraint(candset, meta.fk_rtable, meta.rtable, cat.get_key(meta.rtable))
    except (ForeignKeyConstraintError, KeyConstraintError) as exc:
        if strict:
            raise
        warnings.warn(
            f"candidate-set metadata is stale: {exc}", StaleMetadataWarning, stacklevel=2
        )
    return meta
