"""Standalone metadata catalog and self-containment validators."""

from repro.catalog.catalog import (
    Catalog,
    TableMetadata,
    get_catalog,
    reset_catalog,
)
from repro.catalog.checks import (
    StaleMetadataWarning,
    check_fk_constraint,
    validate_candset,
)

__all__ = [
    "Catalog",
    "StaleMetadataWarning",
    "TableMetadata",
    "check_fk_constraint",
    "get_catalog",
    "reset_catalog",
    "validate_candset",
]
