"""The standalone metadata catalog.

Section 4.1 of the paper: tables are held in generic data structures
(there: pandas dataframes, here: :class:`repro.table.Table`) which cannot
carry EM metadata, so keys and key-foreign-key (FK) relationships live in a
*standalone catalog* keyed by table object.  Because other tools may mutate
a table without telling the catalog, every consumer of metadata must
*re-validate* it before trusting it (self-containment); the validators for
that live in :mod:`repro.catalog.checks` and on this class.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import CatalogError
from repro.table.table import Table

_RAISE = object()


@dataclass
class TableMetadata:
    """Metadata the catalog tracks for one table.

    ``key`` is the name of the table's key column.  For a candidate set
    (the output of blocking), ``fk_ltable``/``fk_rtable`` name the columns
    holding foreign keys into ``ltable``/``rtable``.
    """

    key: str | None = None
    fk_ltable: str | None = None
    fk_rtable: str | None = None
    ltable: Table | None = None
    rtable: Table | None = None
    properties: dict[str, Any] = field(default_factory=dict)

    def is_candset(self) -> bool:
        """True when this metadata describes a blocking candidate set."""
        return (
            self.fk_ltable is not None
            and self.fk_rtable is not None
            and self.ltable is not None
            and self.rtable is not None
        )


class Catalog:
    """Maps table objects to their :class:`TableMetadata`.

    Entries are held via weak references so dropping a table drops its
    metadata; the catalog never keeps a table alive.
    """

    def __init__(self) -> None:
        self._entries: "weakref.WeakKeyDictionary[Table, TableMetadata]" = (
            weakref.WeakKeyDictionary()
        )

    # ------------------------------------------------------------------
    # Generic access
    # ------------------------------------------------------------------
    def metadata_for(self, table: Table) -> TableMetadata:
        """Return (creating if needed) the metadata record for a table."""
        entry = self._entries.get(table)
        if entry is None:
            entry = TableMetadata()
            self._entries[table] = entry
        return entry

    def has_metadata(self, table: Table) -> bool:
        """True if the catalog has any record for this table."""
        return table in self._entries

    def clear(self) -> None:
        """Drop all catalog entries (used by tests)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def set_key(self, table: Table, key: str) -> None:
        """Declare ``key`` as the table's key column, validating it first."""
        table.validate_key(key)
        self.metadata_for(table).key = key

    def get_key(self, table: Table, default: Any = _RAISE) -> str | None:
        """Return the table's key column name.

        Raises :class:`CatalogError` when no key is recorded, unless a
        ``default`` is supplied.
        """
        entry = self._entries.get(table)
        key = entry.key if entry else None
        if key is None:
            if default is _RAISE:
                raise CatalogError("table has no key recorded in the catalog")
            return default
        return key

    # ------------------------------------------------------------------
    # Candidate-set metadata
    # ------------------------------------------------------------------
    def set_candset_metadata(
        self,
        candset: Table,
        key: str,
        fk_ltable: str,
        fk_rtable: str,
        ltable: Table,
        rtable: Table,
    ) -> None:
        """Record the full metadata of a blocking candidate set."""
        candset.validate_key(key)
        candset.require_columns([fk_ltable, fk_rtable])
        entry = self.metadata_for(candset)
        entry.key = key
        entry.fk_ltable = fk_ltable
        entry.fk_rtable = fk_rtable
        entry.ltable = ltable
        entry.rtable = rtable

    def get_candset_metadata(self, candset: Table) -> TableMetadata:
        """Return candidate-set metadata, raising if it is incomplete."""
        entry = self._entries.get(candset)
        if entry is None or not entry.is_candset():
            raise CatalogError(
                "table has no candidate-set metadata (key, fk_ltable, "
                "fk_rtable, ltable, rtable) recorded in the catalog"
            )
        return entry

    def copy_metadata(self, source: Table, target: Table) -> None:
        """Copy the source table's metadata record onto the target table."""
        entry = self._entries.get(source)
        if entry is None:
            raise CatalogError("source table has no metadata to copy")
        self._entries[target] = TableMetadata(
            key=entry.key,
            fk_ltable=entry.fk_ltable,
            fk_rtable=entry.fk_rtable,
            ltable=entry.ltable,
            rtable=entry.rtable,
            properties=dict(entry.properties),
        )

    # ------------------------------------------------------------------
    # Free-form properties
    # ------------------------------------------------------------------
    def set_property(self, table: Table, name: str, value: Any) -> None:
        """Attach an arbitrary named property to a table."""
        self.metadata_for(table).properties[name] = value

    def get_property(self, table: Table, name: str, default: Any = _RAISE) -> Any:
        """Read a named property, raising unless a default is given."""
        entry = self._entries.get(table)
        if entry is None or name not in entry.properties:
            if default is _RAISE:
                raise CatalogError(f"table has no property {name!r}")
            return default
        return entry.properties[name]


_GLOBAL_CATALOG = Catalog()


def get_catalog() -> Catalog:
    """Return the process-wide catalog instance."""
    return _GLOBAL_CATALOG


def reset_catalog() -> None:
    """Clear the process-wide catalog (for test isolation)."""
    _GLOBAL_CATALOG.clear()
