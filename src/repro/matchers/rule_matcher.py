"""Rule-based matching and ML+rules combination.

Section 6 of the paper: "the most accurate EM workflows are likely to
involve a combination of ML and rules."  This module provides:

* :class:`BooleanRuleMatcher` — match when any positive rule fires
  (a disjunction of conjunctive predicates over features);
* :class:`ThresholdMatcher` — the simplest rule: one feature vs. a cutoff
  (the usual "company baseline" in the deployment benchmarks);
* :class:`MLRuleMatcher` — an ML matcher whose output is overridden by
  hand-crafted positive and negative rules.
"""

from __future__ import annotations

import numpy as np

from repro.blocking.rules import Predicate, parse_predicate
from repro.exceptions import ConfigurationError
from repro.features.feature import FeatureTable
from repro.matchers.ml_matcher import MLMatcher
from repro.table.table import Table


class MatchRule:
    """A conjunction of predicates over feature *values* in a fv-table."""

    def __init__(self, predicates: list[Predicate], name: str = ""):
        if not predicates:
            raise ConfigurationError("a match rule needs at least one predicate")
        self.predicates = list(predicates)
        self.name = name

    @classmethod
    def parse(
        cls, specs: list[str] | str, feature_table: FeatureTable, name: str = ""
    ) -> "MatchRule":
        if isinstance(specs, str):
            specs = [specs]
        return cls([parse_predicate(s, feature_table) for s in specs], name=name)

    def fires(self, fv_row: dict) -> bool:
        """Evaluate on one feature-vector row (features already computed)."""
        for predicate in self.predicates:
            value = fv_row[predicate.feature.name]
            if value is None or not predicate.holds_value(float(value)):
                return False
        return True

    def __str__(self) -> str:
        body = " AND ".join(str(p) for p in self.predicates)
        return f"{self.name or 'rule'}: IF {body} THEN match"


class BooleanRuleMatcher:
    """Predicts match when any of its rules fires."""

    def __init__(self, rules: list[MatchRule] | None = None, name: str = "BooleanRuleMatcher"):
        self.rules = list(rules or [])
        self.name = name

    def add_rule(
        self, specs: list[str] | str, feature_table: FeatureTable, name: str = ""
    ) -> MatchRule:
        """Parse and append one match rule; returns it."""
        rule = MatchRule.parse(specs, feature_table, name or f"rule_{len(self.rules) + 1}")
        self.rules.append(rule)
        return rule

    def predict(
        self, fv_table: Table, output_column: str = "predicted", append: bool = True
    ) -> Table:
        """Append 0/1 predictions: 1 when any rule fires."""
        if not self.rules:
            raise ConfigurationError("BooleanRuleMatcher has no rules")
        predictions = [
            1 if any(rule.fires(row) for rule in self.rules) else 0
            for row in fv_table.rows()
        ]
        target = fv_table if append else fv_table.copy()
        target.add_column(output_column, predictions)
        return target


class ThresholdMatcher:
    """Match when a single feature value reaches a threshold."""

    def __init__(self, feature_name: str, threshold: float, name: str | None = None):
        self.feature_name = feature_name
        self.threshold = threshold
        self.name = name or f"threshold({feature_name} >= {threshold})"

    def predict(
        self, fv_table: Table, output_column: str = "predicted", append: bool = True
    ) -> Table:
        fv_table.require_columns([self.feature_name])
        predictions = []
        for value in fv_table.column(self.feature_name):
            fires = value is not None and float(value) == float(value) and float(
                value
            ) >= self.threshold
            predictions.append(1 if fires else 0)
        target = fv_table if append else fv_table.copy()
        target.add_column(output_column, predictions)
        return target


class MLRuleMatcher:
    """ML predictions overridden by hand-crafted rules.

    ``positive_rules`` force a pair to match; ``negative_rules`` force it
    to not match (and win over positive rules, mirroring Magellan's
    "rules correct obvious ML mistakes" usage).
    """

    def __init__(
        self,
        ml_matcher: MLMatcher,
        positive_rules: list[MatchRule] | None = None,
        negative_rules: list[MatchRule] | None = None,
        name: str | None = None,
    ):
        self.ml_matcher = ml_matcher
        self.positive_rules = list(positive_rules or [])
        self.negative_rules = list(negative_rules or [])
        self.name = name or f"MLRule({ml_matcher.name})"

    def fit(self, fv_table: Table, feature_names: list[str], label_column: str = "label"):
        self.ml_matcher.fit(fv_table, feature_names, label_column)
        return self

    def predict(
        self, fv_table: Table, output_column: str = "predicted", append: bool = True
    ) -> Table:
        target = self.ml_matcher.predict(fv_table, output_column, append=append)
        predictions = list(target.column(output_column))
        for i, row in enumerate(target.rows()):
            if any(rule.fires(row) for rule in self.positive_rules):
                predictions[i] = 1
            if any(rule.fires(row) for rule in self.negative_rules):
                predictions[i] = 0
        target.add_column(output_column, predictions)
        return target


def eval_matches(
    fv_table: Table,
    gold_column: str = "label",
    predicted_column: str = "predicted",
) -> dict:
    """Evaluate predictions in a feature-vector table against gold labels.

    Returns precision/recall/F1 and the row ids of false positives and
    false negatives — the raw material of the match debugger.
    """
    fv_table.require_columns([gold_column, predicted_column])
    gold = np.asarray(fv_table.column(gold_column), dtype=np.int64)
    predicted = np.asarray(fv_table.column(predicted_column), dtype=np.int64)
    from repro.ml.metrics import precision_recall_f1

    precision, recall, f1 = precision_recall_f1(gold, predicted)
    ids = fv_table.column("_id") if "_id" in fv_table else list(range(fv_table.num_rows))
    false_positives = [ids[i] for i in np.nonzero((predicted == 1) & (gold == 0))[0]]
    false_negatives = [ids[i] for i in np.nonzero((predicted == 0) & (gold == 1))[0]]
    return {
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "false_positives": false_positives,
        "false_negatives": false_negatives,
    }
