"""Match debugger: explain and triage matcher mistakes.

Table 3 lists "matching debuggers" as pain-point tools.  Given a labeled
feature-vector table with predictions, the debugger surfaces the mistaken
pairs ranked by how confidently the matcher was wrong, and reports which
features most separate matches from non-matches (a cheap, model-agnostic
verify-by-eye aid for the user conversation the paper describes).
"""

from __future__ import annotations

import numpy as np

from repro.matchers.ml_matcher import MLMatcher
from repro.table.table import Table


def debug_wrong_predictions(
    matcher: MLMatcher,
    fv_table: Table,
    gold_column: str = "label",
    top_k: int = 20,
) -> Table:
    """Rank mispredicted pairs by the matcher's (misplaced) confidence.

    Returns a table with ``_id``, gold, predicted, and the match
    probability, most-confidently-wrong first.
    """
    fv_table.require_columns([gold_column])
    proba = matcher.predict_proba(fv_table)
    gold = np.asarray(fv_table.column(gold_column), dtype=np.int64)
    predicted = (proba >= 0.5).astype(np.int64)
    ids = fv_table.column("_id") if "_id" in fv_table else list(range(fv_table.num_rows))
    confidence_in_error = np.where(predicted == 1, proba, 1.0 - proba)
    wrong = np.nonzero(predicted != gold)[0]
    order = wrong[np.argsort(-confidence_in_error[wrong])][:top_k]
    return Table(
        {
            "_id": [ids[i] for i in order],
            "gold": [int(gold[i]) for i in order],
            "predicted": [int(predicted[i]) for i in order],
            "match_probability": [float(proba[i]) for i in order],
        }
    )


def feature_separation_report(
    fv_table: Table,
    feature_names: list[str],
    gold_column: str = "label",
) -> Table:
    """Rank features by how well their means separate the two classes.

    Separation is the absolute difference between the feature's mean over
    matches and over non-matches (NaNs skipped) — a quick signal for which
    features are pulling weight and which are noise the user may delete
    from the feature table F.
    """
    fv_table.require_columns([gold_column, *feature_names])
    gold = np.asarray(fv_table.column(gold_column), dtype=np.int64)
    rows = []
    for name in feature_names:
        values = np.asarray(fv_table.column(name), dtype=np.float64)
        with np.errstate(all="ignore"):
            match_mean = float(np.nanmean(values[gold == 1])) if np.any(gold == 1) else float("nan")
            non_match_mean = float(np.nanmean(values[gold == 0])) if np.any(gold == 0) else float("nan")
        separation = abs(match_mean - non_match_mean)
        rows.append(
            {
                "feature": name,
                "match_mean": match_mean,
                "non_match_mean": non_match_mean,
                "separation": 0.0 if separation != separation else separation,
            }
        )
    rows.sort(key=lambda row: -row["separation"])
    return Table.from_rows(rows)
