"""Matcher selection by cross-validation (guide step "Matching").

Figure 2: the user cross-validates candidate matchers U and V on the
labeled set G and picks the one with the best score (the paper's example:
V wins with F1 = 0.93).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.features.extraction import feature_matrix, label_vector
from repro.matchers.ml_matcher import MLMatcher
from repro.ml.impute import SimpleImputer
from repro.ml.model_selection import cross_validate, mean_cv_score
from repro.table.table import Table


@dataclass
class SelectionResult:
    """Outcome of matcher selection."""

    best_matcher: MLMatcher
    best_score: float
    metric: str
    scores: Table  # one row per matcher: name, precision, recall, f1

    def __repr__(self) -> str:
        return (
            f"SelectionResult(best={self.best_matcher.name}, "
            f"{self.metric}={self.best_score:.4f})"
        )


def select_matcher(
    matchers: list[MLMatcher],
    fv_table: Table,
    feature_names: list[str],
    label_column: str = "label",
    metric: str = "f1",
    n_splits: int = 5,
    random_state: int | None = 0,
) -> SelectionResult:
    """Cross-validate each matcher and return the best by ``metric``.

    The returned ``best_matcher`` is a *fitted* matcher, trained on the
    full labeled table, ready to predict on the candidate set.
    """
    if not matchers:
        raise ConfigurationError("need at least one matcher to select from")
    if metric not in ("precision", "recall", "f1"):
        raise ConfigurationError(f"metric must be precision/recall/f1, got {metric!r}")
    X = feature_matrix(fv_table, feature_names, imputer=SimpleImputer())
    y = label_vector(fv_table, label_column)

    rows = []
    best: tuple[float, MLMatcher] | None = None
    for matcher in matchers:
        scores = cross_validate(
            matcher.estimator,
            X,
            y,
            n_splits=n_splits,
            random_state=random_state,
            feature_names=feature_names,
        )
        row = {
            "matcher": matcher.name,
            "precision": mean_cv_score(scores, "precision"),
            "recall": mean_cv_score(scores, "recall"),
            "f1": mean_cv_score(scores, "f1"),
        }
        rows.append(row)
        if best is None or row[metric] > best[0]:
            best = (row[metric], matcher)

    score, winner = best
    fitted = winner.clone()
    fitted.fit(fv_table, feature_names, label_column=label_column)
    return SelectionResult(
        best_matcher=fitted,
        best_score=score,
        metric=metric,
        scores=Table.from_rows(rows),
    )
