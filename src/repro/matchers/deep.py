"""DeepMatcher substitute: a learned neural matcher over textual attributes.

The paper extends PyMatcher with a PyTorch deep-learning matcher for
textual data [Mudgal et al., SIGMOD 2018] as evidence that the ecosystem
is cheap to extend.  PyTorch is unavailable here, so this module plays the
same ecosystem role with a from-scratch numpy MLP: each textual attribute
pair is embedded by hashing character trigrams into a fixed-width bag
vector, the pair is summarized by (elementwise product, absolute
difference) of the two embeddings, and a one-hidden-layer network trained
with Adam classifies the pair.

Unlike the feature-based matchers it consumes *raw attribute text*, not a
feature-vector table — the defining trait of the deep matcher.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.catalog import Catalog, get_catalog
from repro.catalog.checks import validate_candset
from repro.exceptions import ConfigurationError, NotFittedError
from repro.table.schema import is_missing
from repro.table.table import Table


def _trigram_embed(text: str, dim: int) -> np.ndarray:
    """Hash character trigrams of the text into a bag vector of size dim."""
    vector = np.zeros(dim)
    text = f"  {text.lower()} "
    for i in range(len(text) - 2):
        bucket = hash(text[i : i + 3]) % dim
        vector[bucket] += 1.0
    norm = np.linalg.norm(vector)
    return vector / norm if norm else vector


class DeepMatcher:
    """MLP matcher over hashed character-trigram attribute embeddings."""

    def __init__(
        self,
        attributes: list[str],
        embedding_dim: int = 64,
        hidden_dim: int = 32,
        epochs: int = 60,
        learning_rate: float = 1e-2,
        random_state: int | None = 0,
        name: str = "DeepMatcher",
    ):
        if not attributes:
            raise ConfigurationError("DeepMatcher needs at least one attribute")
        self.attributes = list(attributes)
        self.embedding_dim = embedding_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.random_state = random_state
        self.name = name
        self._weights: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------
    def _pair_vector(self, l_row: dict, r_row: dict) -> np.ndarray:
        pieces = []
        for attr in self.attributes:
            l_value = "" if is_missing(l_row.get(attr)) else str(l_row[attr])
            r_value = "" if is_missing(r_row.get(attr)) else str(r_row[attr])
            left = _trigram_embed(l_value, self.embedding_dim)
            right = _trigram_embed(r_value, self.embedding_dim)
            pieces.append(left * right)
            pieces.append(np.abs(left - right))
        return np.concatenate(pieces)

    def _vectors_for_candset(
        self, candset: Table, catalog: Catalog | None
    ) -> np.ndarray:
        cat = catalog if catalog is not None else get_catalog()
        meta = validate_candset(candset, cat)
        l_index = meta.ltable.index_by(cat.get_key(meta.ltable))
        r_index = meta.rtable.index_by(cat.get_key(meta.rtable))
        return np.vstack(
            [
                self._pair_vector(l_index[l_id], r_index[r_id])
                for l_id, r_id in zip(
                    candset.column(meta.fk_ltable), candset.column(meta.fk_rtable)
                )
            ]
        )

    # ------------------------------------------------------------------
    def fit(
        self,
        candset: Table,
        label_column: str = "label",
        catalog: Catalog | None = None,
    ) -> "DeepMatcher":
        """Train on a labeled candidate set (raw attributes, no features)."""
        candset.require_columns([label_column])
        X = self._vectors_for_candset(candset, catalog)
        y = np.asarray(candset.column(label_column), dtype=np.float64)
        rng = np.random.default_rng(self.random_state)
        input_dim = X.shape[1]
        w1 = rng.normal(0, np.sqrt(2.0 / input_dim), size=(input_dim, self.hidden_dim))
        b1 = np.zeros(self.hidden_dim)
        w2 = rng.normal(0, np.sqrt(2.0 / self.hidden_dim), size=self.hidden_dim)
        b2 = 0.0
        # Adam state.
        moments = [np.zeros_like(w1), np.zeros_like(b1), np.zeros_like(w2), 0.0]
        velocities = [np.zeros_like(w1), np.zeros_like(b1), np.zeros_like(w2), 0.0]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        for _ in range(self.epochs):
            step += 1
            hidden = np.maximum(X @ w1 + b1, 0.0)  # ReLU
            logits = hidden @ w2 + b2
            proba = 1.0 / (1.0 + np.exp(-logits))
            error = (proba - y) / len(y)
            grad_w2 = hidden.T @ error
            grad_b2 = float(error.sum())
            grad_hidden = np.outer(error, w2) * (hidden > 0)
            grad_w1 = X.T @ grad_hidden
            grad_b1 = grad_hidden.sum(axis=0)
            grads = [grad_w1, grad_b1, grad_w2, grad_b2]
            params = [w1, b1, w2, b2]
            new_params = []
            for i, (param, grad) in enumerate(zip(params, grads)):
                moments[i] = beta1 * moments[i] + (1 - beta1) * grad
                velocities[i] = beta2 * velocities[i] + (1 - beta2) * np.square(grad)
                m_hat = moments[i] / (1 - beta1**step)
                v_hat = velocities[i] / (1 - beta2**step)
                new_params.append(
                    param - self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
                )
            w1, b1, w2, b2 = new_params
        self._weights = {"w1": w1, "b1": b1, "w2": w2, "b2": np.float64(b2)}
        return self

    def predict_proba(self, candset: Table, catalog: Catalog | None = None) -> np.ndarray:
        """Match probability for each pair of the candidate set."""
        if self._weights is None:
            raise NotFittedError("DeepMatcher is not fitted")
        X = self._vectors_for_candset(candset, catalog)
        hidden = np.maximum(X @ self._weights["w1"] + self._weights["b1"], 0.0)
        logits = hidden @ self._weights["w2"] + float(self._weights["b2"])
        return 1.0 / (1.0 + np.exp(-logits))

    def predict(
        self,
        candset: Table,
        output_column: str = "predicted",
        append: bool = True,
        catalog: Catalog | None = None,
    ) -> Table:
        """Append 0/1 predictions for each pair of the candidate set."""
        proba = self.predict_proba(candset, catalog)
        target = candset if append else candset.copy()
        target.add_column(output_column, [int(p >= 0.5) for p in proba])
        return target
