"""Matchers: ML matchers, rule matchers, combiners, selection, debugging."""

from repro.matchers.debugger import debug_wrong_predictions, feature_separation_report
from repro.matchers.deep import DeepMatcher
from repro.matchers.ml_matcher import (
    DTMatcher,
    KNNMatcher,
    LogRegMatcher,
    MLMatcher,
    NBMatcher,
    RFMatcher,
    SVMMatcher,
    XGMatcher,
)
from repro.matchers.rule_matcher import (
    BooleanRuleMatcher,
    MatchRule,
    MLRuleMatcher,
    ThresholdMatcher,
    eval_matches,
)
from repro.matchers.selection import SelectionResult, select_matcher

__all__ = [
    "BooleanRuleMatcher",
    "DTMatcher",
    "KNNMatcher",
    "DeepMatcher",
    "LogRegMatcher",
    "MLMatcher",
    "MLRuleMatcher",
    "MatchRule",
    "NBMatcher",
    "RFMatcher",
    "SVMMatcher",
    "XGMatcher",
    "SelectionResult",
    "ThresholdMatcher",
    "debug_wrong_predictions",
    "eval_matches",
    "feature_separation_report",
    "select_matcher",
]
