"""ML matchers: the guide's learning-based matchers U, V, ... (Figure 2).

An :class:`MLMatcher` wraps an estimator from :mod:`repro.ml` and operates
directly on feature-vector *tables* (from
:func:`repro.features.extract_feature_vecs`): it remembers the feature
columns and imputation statistics at fit time and applies them at predict
time, then appends a ``predicted`` column — keeping the whole workflow in
interoperable tables.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError
from repro.features.extraction import feature_matrix, label_vector
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.impute import SimpleImputer
from repro.ml.linear import LinearSVM, LogisticRegression
from repro.ml.naive_bayes import GaussianNB
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.table.table import Table


class MLMatcher:
    """A learning-based matcher over feature-vector tables."""

    #: subclasses set this to their estimator factory
    estimator_factory = None

    def __init__(self, name: str | None = None, **estimator_params):
        if self.estimator_factory is None:
            raise TypeError("use a concrete matcher subclass, e.g. RFMatcher")
        self.name = name or type(self).__name__
        self.estimator = type(self).estimator_factory(**estimator_params)
        self._feature_names: list[str] | None = None
        self._imputer: SimpleImputer | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        fv_table: Table,
        feature_names: list[str],
        label_column: str = "label",
    ) -> "MLMatcher":
        """Train on a labeled feature-vector table."""
        self._feature_names = list(feature_names)
        self._imputer = SimpleImputer(strategy="mean")
        X = feature_matrix(fv_table, self._feature_names, imputer=self._imputer)
        y = label_vector(fv_table, label_column)
        try:
            self.estimator.fit(X, y, feature_names=self._feature_names)
        except TypeError:
            self.estimator.fit(X, y)
        return self

    def fit_matrix(self, X: np.ndarray, y: np.ndarray, feature_names: list[str] | None = None) -> "MLMatcher":
        """Train directly on arrays (used by active learning loops)."""
        self._feature_names = feature_names
        try:
            self.estimator.fit(X, y, feature_names=feature_names)
        except TypeError:
            self.estimator.fit(X, y)
        return self

    def _check_fitted(self) -> None:
        if self._feature_names is None and not self.estimator.is_fitted:
            raise NotFittedError(f"matcher {self.name} is not fitted")

    # ------------------------------------------------------------------
    def predict(
        self,
        fv_table: Table,
        output_column: str = "predicted",
        append: bool = True,
    ) -> Table:
        """Predict match/no-match for each row of a feature-vector table.

        Appends ``output_column`` in place when ``append`` (default) and
        returns the table.
        """
        self._check_fitted()
        X = feature_matrix(fv_table, self._feature_names, imputer=self._imputer)
        predictions = self.estimator.predict(X)
        target = fv_table if append else fv_table.copy()
        target.add_column(output_column, [int(p) for p in predictions])
        return target

    def predict_matrix(self, X: np.ndarray) -> np.ndarray:
        """Predict over a raw matrix."""
        self._check_fitted()
        return self.estimator.predict(X)

    def predict_proba(self, fv_table: Table) -> np.ndarray:
        """Match probabilities (column for class 1) for each pair."""
        self._check_fitted()
        X = feature_matrix(fv_table, self._feature_names, imputer=self._imputer)
        proba = self.estimator.predict_proba(X)
        positive = int(np.searchsorted(self.estimator.classes_, 1))
        return proba[:, positive]

    def clone(self) -> "MLMatcher":
        """Fresh unfitted matcher with the same hyperparameters."""
        copy = type(self)(name=self.name, **self.estimator.get_params())
        return copy

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class DTMatcher(MLMatcher):
    """Decision-tree matcher."""

    estimator_factory = DecisionTreeClassifier


class RFMatcher(MLMatcher):
    """Random-forest matcher (the default choice in Falcon)."""

    estimator_factory = RandomForestClassifier


class LogRegMatcher(MLMatcher):
    """Logistic-regression matcher."""

    estimator_factory = LogisticRegression


class SVMMatcher(MLMatcher):
    """Linear-SVM matcher."""

    estimator_factory = LinearSVM


class NBMatcher(MLMatcher):
    """Gaussian naive-Bayes matcher."""

    estimator_factory = GaussianNB


class XGMatcher(MLMatcher):
    """Gradient-boosted-trees matcher (the XGBoost substitute)."""

    estimator_factory = GradientBoostingClassifier


class KNNMatcher(MLMatcher):
    """k-nearest-neighbors matcher."""

    estimator_factory = KNeighborsClassifier
