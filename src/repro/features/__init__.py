"""Feature engineering for EM: generation, the feature table F, extraction."""

from repro.features.extraction import extract_feature_vecs, feature_matrix, label_vector
from repro.features.feature import (
    Feature,
    FeatureTable,
    make_blackbox_feature,
    make_exact_feature,
    make_numeric_feature,
    make_string_feature,
    make_token_feature,
)
from repro.features.generation import (
    get_attr_corres,
    get_features_for_blocking,
    get_features_for_matching,
)

__all__ = [
    "Feature",
    "FeatureTable",
    "extract_feature_vecs",
    "feature_matrix",
    "get_attr_corres",
    "get_features_for_blocking",
    "get_features_for_matching",
    "label_vector",
    "make_blackbox_feature",
    "make_exact_feature",
    "make_numeric_feature",
    "make_string_feature",
    "make_token_feature",
]
