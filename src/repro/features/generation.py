"""Automatic feature generation (the guide's "Creating Feature Vectors").

Given two tables, pair up corresponding attributes, infer each pair's
type, and instantiate the tokenizer x measure grid appropriate to that
type — e.g. a person-name attribute (medium string) gets Jaccard over
words and 3-grams, Monge-Elkan, cosine, and Levenshtein, while a numeric
attribute gets exact match and relative-difference features.

The output is a :class:`~repro.features.feature.FeatureTable` the user can
trim and extend before extraction, per the paper's customizability
principle.
"""

from __future__ import annotations

from repro.exceptions import SchemaError
from repro.features.feature import (
    Feature,
    FeatureTable,
    make_exact_feature,
    make_numeric_feature,
    make_string_feature,
    make_token_feature,
)
from repro.table.schema import ColumnType, infer_column_type
from repro.table.table import Table
from repro.text.sim.edit_based import JaroWinkler, Levenshtein
from repro.text.sim.generic import abs_norm, rel_diff
from repro.text.sim.hybrid import MongeElkan
from repro.text.sim.token_based import Cosine, Dice, Jaccard, OverlapCoefficient
from repro.text.tokenizers import QgramTokenizer, WhitespaceTokenizer


def get_attr_corres(
    ltable: Table, rtable: Table, l_key: str = "id", r_key: str = "id"
) -> list[tuple[str, str]]:
    """Correspond attributes by identical name, excluding the keys."""
    r_columns = set(rtable.columns)
    return [
        (name, name)
        for name in ltable.columns
        if name in r_columns and name != l_key and name != r_key
    ]


def _merged_type(l_type: ColumnType, r_type: ColumnType) -> ColumnType:
    """Combine the two sides' inferred types into one feature-gen type."""
    if l_type == r_type:
        return l_type
    if ColumnType.UNKNOWN in (l_type, r_type):
        return l_type if r_type == ColumnType.UNKNOWN else r_type
    string_order = [
        ColumnType.SHORT_STRING,
        ColumnType.MEDIUM_STRING,
        ColumnType.LONG_STRING,
    ]
    if l_type in string_order and r_type in string_order:
        return max(l_type, r_type, key=string_order.index)
    # Mixed numeric/string and similar: fall back to medium string.
    return ColumnType.MEDIUM_STRING


def _features_for_pair(l_attr: str, r_attr: str, merged: ColumnType) -> list[Feature]:
    prefix = l_attr if l_attr == r_attr else f"{l_attr}_{r_attr}"
    ws = WhitespaceTokenizer(return_set=True)
    qg3 = QgramTokenizer(q=3, return_set=True)

    if merged == ColumnType.NUMERIC:
        return [
            make_exact_feature(f"{prefix}_exact", l_attr, r_attr),
            make_numeric_feature(f"{prefix}_abs_norm", l_attr, r_attr, abs_norm, "abs_norm"),
            make_numeric_feature(f"{prefix}_rel_diff", l_attr, r_attr, rel_diff, "rel_diff"),
        ]
    if merged == ColumnType.BOOLEAN:
        return [make_exact_feature(f"{prefix}_exact", l_attr, r_attr)]
    if merged == ColumnType.SHORT_STRING:
        return [
            make_exact_feature(f"{prefix}_exact", l_attr, r_attr),
            make_string_feature(f"{prefix}_lev_sim", l_attr, r_attr, Levenshtein(), "lev_sim"),
            make_string_feature(f"{prefix}_jaro_winkler", l_attr, r_attr, JaroWinkler(), "jaro_winkler"),
            make_token_feature(f"{prefix}_jaccard_qgm3", l_attr, r_attr, qg3, Jaccard(), "jaccard"),
        ]
    if merged == ColumnType.MEDIUM_STRING:
        return [
            make_token_feature(f"{prefix}_jaccard_ws", l_attr, r_attr, ws, Jaccard(), "jaccard"),
            make_token_feature(f"{prefix}_jaccard_qgm3", l_attr, r_attr, qg3, Jaccard(), "jaccard"),
            make_token_feature(f"{prefix}_cosine_ws", l_attr, r_attr, ws, Cosine(), "cosine"),
            make_string_feature(f"{prefix}_lev_sim", l_attr, r_attr, Levenshtein(), "lev_sim"),
            make_string_feature(
                f"{prefix}_monge_elkan",
                l_attr,
                r_attr,
                _MongeElkanOnWords(),
                "monge_elkan",
            ),
            make_exact_feature(f"{prefix}_exact", l_attr, r_attr),
        ]
    if merged == ColumnType.LONG_STRING:
        return [
            make_token_feature(f"{prefix}_jaccard_ws", l_attr, r_attr, ws, Jaccard(), "jaccard"),
            make_token_feature(f"{prefix}_cosine_ws", l_attr, r_attr, ws, Cosine(), "cosine"),
            make_token_feature(f"{prefix}_dice_ws", l_attr, r_attr, ws, Dice(), "dice"),
            make_token_feature(
                f"{prefix}_overlap_coeff_ws", l_attr, r_attr, ws, OverlapCoefficient(), "overlap_coeff"
            ),
        ]
    # UNKNOWN: only exact equality is safe.
    return [make_exact_feature(f"{prefix}_exact", l_attr, r_attr)]


class _MongeElkanOnWords:
    """Adapter: Monge-Elkan consumes token lists; expose a string API.

    The secondary Jaro-Winkler scores are memoized per token pair —
    feature extraction evaluates the same word pairs constantly.
    """

    def __init__(self) -> None:
        self._jaro_winkler = JaroWinkler()
        self._token_scores: dict[tuple[str, str], float] = {}
        self._measure = MongeElkan(sim_func=self._cached_score)
        self._tokenizer = WhitespaceTokenizer()

    def _cached_score(self, left: str, right: str) -> float:
        key = (left, right)
        score = self._token_scores.get(key)
        if score is None:
            score = self._token_scores[key] = self._jaro_winkler.get_raw_score(
                left, right
            )
        return score

    def get_sim_score(self, left: str, right: str) -> float:
        return self._measure.get_raw_score(
            self._tokenizer.tokenize_cached(left), self._tokenizer.tokenize_cached(right)
        )


def get_features_for_matching(
    ltable: Table,
    rtable: Table,
    l_key: str = "id",
    r_key: str = "id",
    attr_corres: list[tuple[str, str]] | None = None,
) -> FeatureTable:
    """Auto-generate a feature table for matching two tables.

    ``attr_corres`` overrides the default same-name correspondence.
    """
    if attr_corres is None:
        attr_corres = get_attr_corres(ltable, rtable, l_key, r_key)
    if not attr_corres:
        raise SchemaError(
            "no corresponding attributes between the tables; pass attr_corres"
        )
    table = FeatureTable()
    for l_attr, r_attr in attr_corres:
        ltable.require_columns([l_attr])
        rtable.require_columns([r_attr])
        merged = _merged_type(
            infer_column_type(ltable.column(l_attr)),
            infer_column_type(rtable.column(r_attr)),
        )
        for feature in _features_for_pair(l_attr, r_attr, merged):
            table.add(feature)
    return table


def get_features_for_blocking(
    ltable: Table,
    rtable: Table,
    l_key: str = "id",
    r_key: str = "id",
    attr_corres: list[tuple[str, str]] | None = None,
) -> FeatureTable:
    """Feature table for learning blocking rules.

    Restricted to join-executable features (token and exact kinds) plus
    numeric exactness, so every extracted rule can be executed at scale.
    """
    full = get_features_for_matching(ltable, rtable, l_key, r_key, attr_corres)
    return FeatureTable([f for f in full if f.is_join_executable])
