"""Feature objects: named similarity functions over an attribute pair.

A feature such as ``jaccard(3gram(A.name), 3gram(B.name))`` (the paper's
Section 4.1 example) is represented as a :class:`Feature` carrying enough
structure — attribute pair, similarity kind, tokenizer, measure — that
downstream tools can do more than call it: the rule-based blocker and
Falcon's rule executor translate *token-similarity* features into scalable
sim joins instead of evaluating them pairwise.

Feature values are floats; missing attribute values yield NaN, which the
feature-vector extractor leaves for the imputer to fill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import ConfigurationError
from repro.table.schema import is_missing
from repro.table.table import Row
from repro.text.tokenizers import Tokenizer

NAN = float("nan")

# Similarity kinds drive executability of blocking rules:
# 'token'  - set similarity over tokens (join-executable)
# 'exact'  - exact equality (join-executable)
# 'edit'   - character-level similarity (pairwise only)
# 'numeric'- numeric comparison (pairwise only)
# 'blackbox' - arbitrary user function (pairwise only)
SIM_KINDS = ("token", "exact", "edit", "numeric", "blackbox")


@dataclass
class Feature:
    """A named similarity feature over one attribute from each table."""

    name: str
    l_attr: str
    r_attr: str
    sim_kind: str
    measure_name: str
    function: Callable[[Any, Any], float]
    tokenizer: Tokenizer | None = None

    def __post_init__(self) -> None:
        if self.sim_kind not in SIM_KINDS:
            raise ConfigurationError(
                f"sim_kind must be one of {SIM_KINDS}, got {self.sim_kind!r}"
            )

    def __call__(self, l_value: Any, r_value: Any) -> float:
        """Evaluate the feature on a pair of attribute values."""
        return self.function(l_value, r_value)

    def apply_rows(self, l_row: Row, r_row: Row) -> float:
        """Evaluate the feature on a pair of rows."""
        return self.function(l_row[self.l_attr], r_row[self.r_attr])

    @property
    def is_join_executable(self) -> bool:
        """Can a 'feature >= t' predicate be executed as a join?"""
        return self.sim_kind in ("token", "exact")

    def __repr__(self) -> str:
        return (
            f"Feature({self.name!r}: {self.measure_name} over "
            f"A.{self.l_attr} x B.{self.r_attr})"
        )


class FeatureTable:
    """The mutable global feature set F of the guide.

    The paper stresses customizability: PyMatcher auto-generates a feature
    set, stores it in a variable F, and gives the user ways to delete
    features and declaratively add more.  This class is that F.
    """

    def __init__(self, features: list[Feature] | None = None):
        self._features: dict[str, Feature] = {}
        for feature in features or []:
            self.add(feature)

    def add(self, feature: Feature) -> None:
        """Add a feature; names must be unique."""
        if feature.name in self._features:
            raise ConfigurationError(f"duplicate feature name {feature.name!r}")
        self._features[feature.name] = feature

    def remove(self, name: str) -> None:
        """Delete a feature by name."""
        if name not in self._features:
            raise ConfigurationError(f"no feature named {name!r}")
        del self._features[name]

    def get(self, name: str) -> Feature:
        """Look up a feature by name."""
        try:
            return self._features[name]
        except KeyError:
            raise ConfigurationError(
                f"no feature named {name!r}; have {self.names()}"
            ) from None

    def names(self) -> list[str]:
        """All feature names, in insertion order."""
        return list(self._features)

    def features(self) -> list[Feature]:
        """All features, in insertion order."""
        return list(self._features.values())

    def subset(self, names: list[str]) -> "FeatureTable":
        """A new FeatureTable with only the named features."""
        return FeatureTable([self.get(name) for name in names])

    def __len__(self) -> int:
        return len(self._features)

    def __contains__(self, name: str) -> bool:
        return name in self._features

    def __iter__(self):
        return iter(self._features.values())

    def __repr__(self) -> str:
        return f"FeatureTable({len(self)} features)"


def make_token_feature(
    name: str,
    l_attr: str,
    r_attr: str,
    tokenizer: Tokenizer,
    measure,
    measure_name: str,
) -> Feature:
    """Build a token-similarity feature (join-executable)."""

    def function(l_value: Any, r_value: Any) -> float:
        if is_missing(l_value) or is_missing(r_value):
            return NAN
        l_tokens = tokenizer.tokenize_cached(str(l_value).lower())
        r_tokens = tokenizer.tokenize_cached(str(r_value).lower())
        return float(measure.get_raw_score(l_tokens, r_tokens))

    return Feature(name, l_attr, r_attr, "token", measure_name, function, tokenizer)


def make_string_feature(
    name: str, l_attr: str, r_attr: str, measure, measure_name: str
) -> Feature:
    """Build a character-level (edit-based) similarity feature."""

    def function(l_value: Any, r_value: Any) -> float:
        if is_missing(l_value) or is_missing(r_value):
            return NAN
        return float(measure.get_sim_score(str(l_value).lower(), str(r_value).lower()))

    return Feature(name, l_attr, r_attr, "edit", measure_name, function)


def make_exact_feature(name: str, l_attr: str, r_attr: str) -> Feature:
    """Build an exact-equality feature (join-executable)."""
    from repro.text.sim.generic import exact_match

    def function(l_value: Any, r_value: Any) -> float:
        if isinstance(l_value, str):
            l_value = l_value.lower()
        if isinstance(r_value, str):
            r_value = r_value.lower()
        return exact_match(l_value, r_value)

    return Feature(name, l_attr, r_attr, "exact", "exact_match", function)


def make_numeric_feature(
    name: str, l_attr: str, r_attr: str, measure, measure_name: str
) -> Feature:
    """Build a numeric-comparison feature."""
    return Feature(name, l_attr, r_attr, "numeric", measure_name, measure)


def make_blackbox_feature(name: str, l_attr: str, r_attr: str, function) -> Feature:
    """Wrap an arbitrary user function as a feature (pairwise only)."""
    return Feature(name, l_attr, r_attr, "blackbox", "blackbox", function)
