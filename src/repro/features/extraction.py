"""Feature-vector extraction from candidate sets.

``extract_feature_vecs`` is the guide step that turns a candidate set into
the learner's input: one row per candidate pair with one column per
feature.  It validates the candidate set's catalog metadata first
(self-containment) and carries the FK columns through so predictions can
be traced back to the original tuples.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.blocking.base import CANDSET_ID
from repro.catalog.catalog import Catalog, get_catalog
from repro.catalog.checks import validate_candset
from repro.features.feature import FeatureTable
from repro.ml.impute import SimpleImputer
from repro.obs import get_registry
from repro.perf.parallel import effective_n_jobs, run_sharded, split_evenly
from repro.table.table import Table

# Cache-miss sentinel: ``None`` is a legitimate (blackbox) feature value,
# so misses must be detected with an object no feature can return.
_MISS = object()


def extract_feature_vecs(
    candset: Table,
    feature_table: FeatureTable,
    catalog: Catalog | None = None,
    label_column: str | None = None,
    n_jobs: int = 1,
) -> Table:
    """Compute feature vectors for each pair of a candidate set.

    Returns a table with ``_id``, both FK columns, one column per feature
    (NaN where an attribute value is missing), and — when ``label_column``
    is given — that column copied through from the candidate set.
    ``n_jobs`` fans the candidate pairs out over a process pool; output is
    byte-identical to serial.
    """
    cat = catalog if catalog is not None else get_catalog()
    meta = validate_candset(candset, cat)
    l_index = meta.ltable.index_by(cat.get_key(meta.ltable))
    r_index = meta.rtable.index_by(cat.get_key(meta.rtable))

    columns: dict[str, list[Any]] = {
        CANDSET_ID: list(candset.column(meta.key)),
        meta.fk_ltable: list(candset.column(meta.fk_ltable)),
        meta.fk_rtable: list(candset.column(meta.fk_rtable)),
    }
    if label_column is not None:
        candset.require_columns([label_column])

    features = list(feature_table)

    def extract_shard(
        shard: list[tuple[Any, Any]],
    ) -> tuple[dict[str, list[Any]], int, int]:
        # Candidate sets repeat attribute-value pairs heavily (think state
        # or city columns), so each feature's values are memoized per
        # distinct (l_value, r_value) pair.  Unhashable values fall back
        # to direct evaluation.  Hit/miss counts travel back with the
        # shard and are accounted in the parent process (a registry
        # increment inside a forked worker would be lost).
        shard_columns: dict[str, list[Any]] = {f.name: [] for f in features}
        memos: dict[str, dict] = {f.name: {} for f in features}
        hits = misses = 0
        for l_key_value, r_key_value in shard:
            l_row = l_index[l_key_value]
            r_row = r_index[r_key_value]
            for feature in features:
                l_value = l_row[feature.l_attr]
                r_value = r_row[feature.r_attr]
                memo = memos[feature.name]
                try:
                    value = memo.get((l_value, r_value), _MISS)
                    if value is _MISS:
                        misses += 1
                        value = memo[(l_value, r_value)] = feature(l_value, r_value)
                    else:
                        hits += 1
                except TypeError:
                    misses += 1
                    value = feature(l_value, r_value)
                shard_columns[feature.name].append(value)
        return shard_columns, hits, misses

    pairs = list(zip(candset.column(meta.fk_ltable), candset.column(meta.fk_rtable)))
    shards = split_evenly(pairs, effective_n_jobs(n_jobs))
    for feature in features:
        columns[feature.name] = []
    total_hits = total_misses = 0
    for shard_columns, hits, misses in run_sharded(shards, extract_shard, n_jobs):
        total_hits += hits
        total_misses += misses
        for name, values in shard_columns.items():
            columns[name].extend(values)
    registry = get_registry()
    registry.counter("feature_cache_hits_total").inc(total_hits)
    registry.counter("feature_cache_misses_total").inc(total_misses)
    registry.counter("feature_vectors_total").inc(len(pairs))
    if label_column is not None:
        columns[label_column] = list(candset.column(label_column))

    result = Table(columns)
    cat.set_candset_metadata(
        result, meta.key, meta.fk_ltable, meta.fk_rtable, meta.ltable, meta.rtable
    )
    return result


def feature_matrix(
    fv_table: Table,
    feature_names: list[str],
    impute: bool = True,
    imputer: SimpleImputer | None = None,
) -> np.ndarray:
    """Turn feature-vector columns into a float matrix for the learners.

    With ``impute=True`` (default) NaNs are filled by ``imputer`` (a fresh
    mean-imputer if none given).  Pass a pre-fit imputer to apply training
    statistics to a prediction set.
    """
    fv_table.require_columns(feature_names)
    matrix = np.column_stack(
        [np.asarray(fv_table.column(name), dtype=np.float64) for name in feature_names]
    )
    if not impute:
        return matrix
    if imputer is None:
        imputer = SimpleImputer(strategy="mean")
        return imputer.fit_transform(matrix)
    if imputer.is_fitted:
        return imputer.transform(matrix)
    return imputer.fit_transform(matrix)


def label_vector(fv_table: Table, label_column: str = "label") -> np.ndarray:
    """Extract the integer label column as an array."""
    fv_table.require_columns([label_column])
    return np.asarray(fv_table.column(label_column), dtype=np.int64)
