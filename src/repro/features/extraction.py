"""Feature-vector extraction from candidate sets.

``extract_feature_vecs`` is the guide step that turns a candidate set into
the learner's input: one row per candidate pair with one column per
feature.  It validates the candidate set's catalog metadata first
(self-containment) and carries the FK columns through so predictions can
be traced back to the original tuples.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.blocking.base import CANDSET_ID
from repro.catalog.catalog import Catalog, get_catalog
from repro.catalog.checks import validate_candset
from repro.features.feature import FeatureTable
from repro.ml.impute import SimpleImputer
from repro.obs import get_registry
from repro.perf.parallel import effective_n_jobs, run_sharded, split_evenly
from repro.table.table import Table

# Cache-miss sentinel: ``None`` is a legitimate (blackbox) feature value,
# so misses must be detected with an object no feature can return.
_MISS = object()


def extract_feature_vecs(
    candset: Table,
    feature_table: FeatureTable,
    catalog: Catalog | None = None,
    label_column: str | None = None,
    n_jobs: int = 1,
) -> Table:
    """Compute feature vectors for each pair of a candidate set.

    Returns a table with ``_id``, both FK columns, one column per feature
    (NaN where an attribute value is missing), and — when ``label_column``
    is given — that column copied through from the candidate set.
    ``n_jobs`` fans the candidate pairs out over a process pool; output is
    byte-identical to serial.
    """
    cat = catalog if catalog is not None else get_catalog()
    meta = validate_candset(candset, cat)
    l_index = meta.ltable.index_by(cat.get_key(meta.ltable))
    r_index = meta.rtable.index_by(cat.get_key(meta.rtable))

    columns: dict[str, list[Any]] = {
        CANDSET_ID: list(candset.column(meta.key)),
        meta.fk_ltable: list(candset.column(meta.fk_ltable)),
        meta.fk_rtable: list(candset.column(meta.fk_rtable)),
    }
    if label_column is not None:
        candset.require_columns([label_column])

    features = list(feature_table)
    pairs = list(zip(candset.column(meta.fk_ltable), candset.column(meta.fk_rtable)))

    # Batch columnar extraction with *global* deduplication: candidate
    # sets repeat attribute-value pairs heavily (think state or city
    # columns), so each feature is evaluated once per distinct
    # (l_value, r_value) pair across the WHOLE candidate set — the dedup
    # happens before the process-pool fan-out, so duplicate pairs landing
    # in different shards can never recompute (the old per-shard memo
    # did exactly that).  ``tasks`` holds one entry per distinct
    # evaluation; ``slots[f]`` maps each candset row to its task, and the
    # scatter at the end rebuilds the columns in row order, byte-
    # identical to per-pair evaluation.  Unhashable values cannot be
    # deduped and get one task per occurrence.
    tasks: list[tuple[int, Any, Any]] = []
    task_ids: dict[tuple[int, Any, Any], int] = {}
    slots: list[list[int]] = [[] for _ in features]
    hits = 0
    for l_key_value, r_key_value in pairs:
        l_row = l_index[l_key_value]
        r_row = r_index[r_key_value]
        for feature_index, feature in enumerate(features):
            task = (feature_index, l_row[feature.l_attr], r_row[feature.r_attr])
            try:
                slot = task_ids.get(task, _MISS)
                hashable = True
            except TypeError:
                slot = _MISS
                hashable = False
            if slot is _MISS:
                slot = len(tasks)
                tasks.append(task)
                if hashable:
                    task_ids[task] = slot
            else:
                hits += 1
            slots[feature_index].append(slot)

    def evaluate_shard(shard: range) -> list[Any]:
        # Workers receive shard *ranges*; the task list itself is
        # inherited through fork, and only the computed values cross the
        # process boundary on the way back.
        return [
            features[feature_index](l_value, r_value)
            for feature_index, l_value, r_value in (tasks[i] for i in shard)
        ]

    shards = split_evenly(range(len(tasks)), effective_n_jobs(n_jobs))
    values: list[Any] = []
    for shard_values in run_sharded(shards, evaluate_shard, n_jobs):
        values.extend(shard_values)
    for feature, feature_slots in zip(features, slots):
        columns[feature.name] = [values[slot] for slot in feature_slots]
    registry = get_registry()
    # Misses = distinct evaluations actually performed; hits = repeated
    # occurrences served by the global dedup.
    registry.counter("feature_cache_hits_total").inc(hits)
    registry.counter("feature_cache_misses_total").inc(len(tasks))
    registry.counter("feature_vectors_total").inc(len(pairs))
    if label_column is not None:
        columns[label_column] = list(candset.column(label_column))

    result = Table(columns)
    cat.set_candset_metadata(
        result, meta.key, meta.fk_ltable, meta.fk_rtable, meta.ltable, meta.rtable
    )
    return result


def feature_matrix(
    fv_table: Table,
    feature_names: list[str],
    impute: bool = True,
    imputer: SimpleImputer | None = None,
) -> np.ndarray:
    """Turn feature-vector columns into a float matrix for the learners.

    With ``impute=True`` (default) NaNs are filled by ``imputer`` (a fresh
    mean-imputer if none given).  Pass a pre-fit imputer to apply training
    statistics to a prediction set.
    """
    fv_table.require_columns(feature_names)
    matrix = np.column_stack(
        [np.asarray(fv_table.column(name), dtype=np.float64) for name in feature_names]
    )
    if not impute:
        return matrix
    if imputer is None:
        imputer = SimpleImputer(strategy="mean")
        return imputer.fit_transform(matrix)
    if imputer.is_fitted:
        return imputer.transform(matrix)
    return imputer.fit_transform(matrix)


def label_vector(fv_table: Table, label_column: str = "label") -> np.ndarray:
    """Extract the integer label column as an array."""
    fv_table.require_columns([label_column])
    return np.asarray(fv_table.column(label_column), dtype=np.int64)
