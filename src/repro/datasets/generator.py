"""Two-table EM dataset generation with gold standard.

``make_em_dataset`` fabricates the paper's common scenario: two tables A
and B describing overlapping sets of real-world entities, where B's view
of a shared entity is a corrupted copy of A's.  The gold standard (the
set of truly matching (a_id, b_id) pairs) comes for free, which is what
lets the benchmarks report precision/recall like Tables 1 and 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.catalog.catalog import Catalog, get_catalog
from repro.datasets.corruptions import DirtinessConfig, corrupt_record
from repro.exceptions import ConfigurationError
from repro.table.table import Table

Entity = dict[str, Any]
Pair = tuple[Any, Any]


@dataclass
class EMDataset:
    """A generated EM task: two tables, keys, and the gold matches."""

    name: str
    ltable: Table
    rtable: Table
    gold_pairs: set[Pair]
    l_key: str = "id"
    r_key: str = "id"
    notes: dict[str, Any] = field(default_factory=dict)

    def register(self, catalog: Catalog | None = None) -> "EMDataset":
        """Record both tables' keys in the catalog."""
        cat = catalog if catalog is not None else get_catalog()
        cat.set_key(self.ltable, self.l_key)
        cat.set_key(self.rtable, self.r_key)
        return self

    def __repr__(self) -> str:
        return (
            f"EMDataset({self.name!r}: |A|={self.ltable.num_rows}, "
            f"|B|={self.rtable.num_rows}, matches={len(self.gold_pairs)})"
        )


def make_em_dataset(
    factory: Callable[[random.Random], Entity],
    n_left: int,
    n_right: int,
    match_fraction: float = 0.5,
    dirtiness: DirtinessConfig | None = None,
    seed: int = 0,
    name: str = "synthetic",
    factory_kwargs: dict[str, Any] | None = None,
) -> EMDataset:
    """Generate an EM dataset from an entity factory.

    ``match_fraction`` of the right table's rows are corrupted copies of
    distinct left rows (a one-to-one gold mapping); the remainder of each
    table is unmatched entities.  Left ids are ``a0, a1, ...`` and right
    ids ``b0, b1, ...``; rows are shuffled so ids carry no positional
    signal.
    """
    if not 0.0 <= match_fraction <= 1.0:
        raise ConfigurationError(
            f"match_fraction must be in [0, 1], got {match_fraction}"
        )
    n_matches = int(round(match_fraction * min(n_left, n_right)))
    dirtiness = dirtiness if dirtiness is not None else DirtinessConfig.moderate()
    rng = random.Random(seed)
    kwargs = factory_kwargs or {}

    left_entities = [factory(rng, **kwargs) for _ in range(n_left)]
    left_rows = [{"id": f"a{i}", **entity} for i, entity in enumerate(left_entities)]

    matched_positions = rng.sample(range(n_left), n_matches)
    right_rows: list[Entity] = []
    gold: set[Pair] = set()
    for j, position in enumerate(matched_positions):
        copy = corrupt_record(left_entities[position], dirtiness, rng)
        right_rows.append({"id": f"b{j}", **copy})
        gold.add((f"a{position}", f"b{j}"))
    for j in range(n_matches, n_right):
        entity = factory(rng, **kwargs)
        right_rows.append({"id": f"b{j}", **entity})

    rng.shuffle(left_rows)
    rng.shuffle(right_rows)
    columns = ["id", *left_entities[0].keys()] if left_rows else ["id"]
    dataset = EMDataset(
        name=name,
        ltable=Table.from_rows(left_rows, columns=columns),
        rtable=Table.from_rows(right_rows, columns=columns),
        gold_pairs=gold,
    )
    return dataset.register()


def make_string_dataset(
    strings: list[str],
    match_fraction: float = 0.6,
    dirtiness: DirtinessConfig | None = None,
    seed: int = 0,
    name: str = "strings",
) -> EMDataset:
    """Two single-column tables of strings (the Smurf setting)."""
    dirtiness = dirtiness if dirtiness is not None else DirtinessConfig.moderate()
    rng = random.Random(seed)
    left_rows = [{"id": f"a{i}", "value": s} for i, s in enumerate(strings)]
    n_matches = int(round(match_fraction * len(strings)))
    matched = rng.sample(range(len(strings)), n_matches)
    right_rows = []
    gold: set[Pair] = set()
    for j, position in enumerate(matched):
        corrupted = corrupt_record({"value": strings[position]}, dirtiness, rng)
        right_rows.append({"id": f"b{j}", "value": corrupted["value"]})
        gold.add((f"a{position}", f"b{j}"))
    shuffled = strings[:]
    rng.shuffle(shuffled)
    for j in range(n_matches, len(strings)):
        right_rows.append({"id": f"b{j}", "value": shuffled[j] + f" {j}"})
    rng.shuffle(left_rows)
    rng.shuffle(right_rows)
    dataset = EMDataset(
        name=name,
        ltable=Table.from_rows(left_rows, columns=["id", "value"]),
        rtable=Table.from_rows(right_rows, columns=["id", "value"]),
        gold_pairs=gold,
    )
    return dataset.register()
