"""Corruption primitives: how a clean value appears in a second source.

Dirty data is the story of the paper's hardest deployments (the "Vendors"
Brazilian generic addresses, the incomplete "Vehicles" records), so the
generators control dirtiness through an explicit
:class:`DirtinessConfig` rather than one scalar knob.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def typo(value: str, rng: random.Random) -> str:
    """Apply one random character edit (swap/delete/insert/replace)."""
    if not value:
        return value
    operation = rng.choice(("swap", "delete", "insert", "replace"))
    position = rng.randrange(len(value))
    if operation == "swap" and len(value) > 1:
        position = min(position, len(value) - 2)
        return (
            value[:position]
            + value[position + 1]
            + value[position]
            + value[position + 2 :]
        )
    if operation == "delete" and len(value) > 1:
        return value[:position] + value[position + 1 :]
    if operation == "insert":
        return value[:position] + rng.choice(_ALPHABET) + value[position:]
    return value[:position] + rng.choice(_ALPHABET) + value[position + 1 :]


def abbreviate(value: str, rng: random.Random) -> str:
    """Abbreviate one multi-character token to its initial ('David' -> 'D.')."""
    tokens = value.split()
    candidates = [i for i, token in enumerate(tokens) if len(token) > 2]
    if not candidates:
        return value
    index = rng.choice(candidates)
    tokens[index] = tokens[index][0] + "."
    return " ".join(tokens)


def drop_token(value: str, rng: random.Random) -> str:
    """Drop one token from a multi-token value."""
    tokens = value.split()
    if len(tokens) < 2:
        return value
    tokens.pop(rng.randrange(len(tokens)))
    return " ".join(tokens)


def reorder_tokens(value: str, rng: random.Random) -> str:
    """Swap two adjacent tokens ('Smith John' for 'John Smith')."""
    tokens = value.split()
    if len(tokens) < 2:
        return value
    position = rng.randrange(len(tokens) - 1)
    tokens[position], tokens[position + 1] = tokens[position + 1], tokens[position]
    return " ".join(tokens)


def case_noise(value: str, rng: random.Random) -> str:
    """Randomly upper- or lower-case the whole value."""
    return value.upper() if rng.random() < 0.5 else value.lower()


def numeric_jitter(value: float, rng: random.Random, relative: float = 0.05) -> float:
    """Perturb a number by up to ``relative`` of its magnitude."""
    scale = abs(value) if value else 1.0
    return value + rng.uniform(-relative, relative) * scale


@dataclass
class DirtinessConfig:
    """Per-table corruption rates, all probabilities per value.

    ``generic_value_rate`` maps column name -> (probability, generic
    value): the whole value is replaced by the generic constant — the
    Brazilian-vendors failure mode, where vendors "entered some generic
    addresses instead of their real addresses".
    """

    typo_rate: float = 0.15
    abbrev_rate: float = 0.1
    token_drop_rate: float = 0.05
    reorder_rate: float = 0.05
    case_rate: float = 0.05
    missing_rate: float = 0.02
    numeric_jitter_rate: float = 0.1
    generic_value_rate: dict[str, tuple[float, str]] = field(default_factory=dict)

    @classmethod
    def clean(cls) -> "DirtinessConfig":
        """No corruption at all."""
        return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    @classmethod
    def light(cls) -> "DirtinessConfig":
        return cls(0.08, 0.06, 0.02, 0.02, 0.03, 0.01, 0.05)

    @classmethod
    def moderate(cls) -> "DirtinessConfig":
        return cls()

    @classmethod
    def heavy(cls) -> "DirtinessConfig":
        return cls(0.3, 0.2, 0.12, 0.1, 0.1, 0.12, 0.25)


def corrupt_value(
    value: Any, column: str, config: DirtinessConfig, rng: random.Random
) -> Any:
    """Corrupt one attribute value according to the config."""
    if value is None:
        return None
    if rng.random() < config.missing_rate:
        return None
    if column in config.generic_value_rate:
        probability, generic = config.generic_value_rate[column]
        if rng.random() < probability:
            return generic
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        if rng.random() < config.numeric_jitter_rate:
            jittered = numeric_jitter(float(value), rng)
            return int(round(jittered)) if isinstance(value, int) else jittered
        return value
    text = str(value)
    if rng.random() < config.typo_rate:
        text = typo(text, rng)
    if rng.random() < config.abbrev_rate:
        text = abbreviate(text, rng)
    if rng.random() < config.token_drop_rate:
        text = drop_token(text, rng)
    if rng.random() < config.reorder_rate:
        text = reorder_tokens(text, rng)
    if rng.random() < config.case_rate:
        text = case_noise(text, rng)
    return text


def corrupt_record(
    record: dict[str, Any],
    config: DirtinessConfig,
    rng: random.Random,
    skip_columns: set[str] = frozenset(),
) -> dict[str, Any]:
    """Corrupt every (non-skipped) attribute of a record."""
    return {
        column: (
            value
            if column in skip_columns
            else corrupt_value(value, column, config, rng)
        )
        for column, value in record.items()
    }
