"""Vocabulary pools for the synthetic entity generators.

Fixed word lists keep generation deterministic and offline while giving
the corruption machinery realistic raw material (multi-token names,
abbreviation targets, etc.).
"""

from __future__ import annotations

FIRST_NAMES = [
    "David", "Daniel", "Joseph", "Maria", "Anna", "James", "Robert", "Linda",
    "Michael", "Sarah", "Carlos", "Lucia", "Pedro", "Julia", "Thomas", "Laura",
    "Kevin", "Alice", "Brian", "Diana", "Marcos", "Elena", "Victor", "Sofia",
    "Andre", "Paula", "Rafael", "Clara", "Hugo", "Irene", "Oscar", "Nina",
    "Walter", "Rosa", "Felix", "Marta", "Simon", "Vera", "Leon", "Iris",
]

LAST_NAMES = [
    "Smith", "Wilson", "Johnson", "Silva", "Santos", "Oliveira", "Brown",
    "Miller", "Davis", "Garcia", "Martinez", "Anderson", "Taylor", "Moore",
    "Costa", "Pereira", "Almeida", "Souza", "Lima", "Ferreira", "Walker",
    "Young", "King", "Wright", "Hill", "Green", "Baker", "Nelson", "Carter",
    "Mitchell", "Roberts", "Turner", "Phillips", "Campbell", "Parker", "Evans",
    "Edwards", "Collins", "Stewart", "Morris",
]

CITIES = [
    "Madison", "Middleton", "San Jose", "Austin", "Portland", "Denver",
    "Columbus", "Boston", "Seattle", "Atlanta", "Chicago", "Dallas",
    "Phoenix", "Omaha", "Tucson", "Raleigh", "Tampa", "Fresno", "Mesa",
    "Reno", "Boise", "Fargo", "Salem", "Provo", "Waco", "Toledo",
]

STATES = [
    "WI", "CA", "TX", "OR", "CO", "OH", "MA", "WA", "GA", "IL",
    "AZ", "NE", "NC", "FL", "NV", "ID", "ND", "UT",
]

STREET_NAMES = [
    "Main", "Oak", "Maple", "Cedar", "Pine", "Elm", "Washington", "Lake",
    "Hill", "Park", "River", "Sunset", "Ridge", "Meadow", "Forest", "Spring",
    "Highland", "Valley", "Prairie", "Willow",
]

STREET_TYPES = ["St", "Ave", "Blvd", "Rd", "Ln", "Dr", "Ct", "Way"]

PRODUCT_BRANDS = [
    "Acme", "Globex", "Initech", "Umbra", "Vertex", "Nimbus", "Zephyr",
    "Quanta", "Helix", "Orion", "Pulsar", "Vega", "Lyra", "Nova", "Atlas",
    "Titan",
]

PRODUCT_NOUNS = [
    "Blender", "Toaster", "Kettle", "Mixer", "Vacuum", "Heater", "Fan",
    "Lamp", "Speaker", "Monitor", "Keyboard", "Mouse", "Router", "Charger",
    "Camera", "Printer", "Headphones", "Microwave", "Grill", "Drill",
]

PRODUCT_QUALIFIERS = [
    "Pro", "Max", "Mini", "Plus", "Ultra", "Lite", "Classic", "Deluxe",
    "Compact", "Premium", "Eco", "Turbo",
]

CAR_MAKES = [
    "Toyota", "Honda", "Ford", "Chevrolet", "Nissan", "Subaru", "Mazda",
    "Hyundai", "Kia", "Volkswagen", "Dodge", "Jeep",
]

CAR_MODELS = [
    "Sedan LX", "Coupe SE", "Hatch GT", "Wagon XL", "Truck HD", "SUV Sport",
    "Compact S", "Crossover T", "Minivan L", "Roadster R",
]

VENUES = [
    "SIGMOD", "VLDB", "ICDE", "EDBT", "CIKM", "KDD", "WWW", "WSDM",
    "ICDM", "SDM",
]

PAPER_TOPIC_WORDS = [
    "entity", "matching", "blocking", "learning", "crowdsourcing", "schema",
    "integration", "cleaning", "extraction", "indexing", "scalable", "deep",
    "active", "string", "similarity", "join", "resolution", "record",
    "linkage", "data", "query", "optimization", "transaction", "storage",
    "distributed", "streaming", "graph", "provenance", "sampling", "privacy",
    "compression", "caching", "partitioning", "replication", "consistency",
    "recovery", "concurrency", "workload", "benchmark", "adaptive",
    "incremental", "approximate", "parallel", "columnar", "versioning",
    "lineage", "wrangling", "profiling", "curation", "annotation",
    "federated", "semantic", "temporal", "spatial", "probabilistic",
    "declarative", "interactive", "visual", "embedded", "serverless",
]

CUISINES = [
    "Italian", "Mexican", "Thai", "Indian", "Chinese", "French", "Greek",
    "Japanese", "Korean", "Vietnamese",
]

RESTAURANT_WORDS = [
    "Garden", "House", "Palace", "Corner", "Grill", "Bistro", "Kitchen",
    "Table", "Cafe", "Diner", "Tavern", "Terrace",
]

MUNICIPALITIES = [
    "Altamira", "Maraba", "Santarem", "Itaituba", "Paragominas", "Tucuma",
    "Xinguara", "Redencao", "Jacareacanga", "Novo Progresso", "Anapu",
    "Uruara", "Placas", "Trairao", "Rurópolis", "Brasil Novo",
]

RANCH_WORDS = [
    "Fazenda", "Rancho", "Sitio", "Estancia", "Agropecuaria", "Chacara",
]

COMPANY_SUFFIXES = ["Inc", "LLC", "Ltd", "Corp", "Co", "Group", "Holdings"]

BOOK_TITLE_WORDS = [
    "Shadow", "River", "Garden", "Winter", "Secret", "Journey", "Silent",
    "Golden", "Broken", "Hidden", "Lost", "Distant", "Burning", "Frozen",
    "Crimson", "Midnight", "Forgotten", "Endless", "Sacred", "Wild",
]

GENERIC_ADDRESS = "Rua Principal 1, Centro"
