"""Deployment scenarios: synthetic analogs of Tables 1 and 2.

The paper evaluates PyMatcher on 8 real deployments (Table 1) and
CloudMatcher on 13 EM tasks (Table 2).  The raw datasets are proprietary,
so each deployment is modelled as a seeded synthetic scenario whose
*dirtiness structure* reproduces the paper's accuracy story:

* clean-ish tasks reach precision/recall in the 90s;
* "Vehicles" has records so incomplete that the expert labels unreliably
  (hard pairs + an uncertain labeler), capping accuracy;
* "Vendors" contains Brazilian vendors with generic addresses that are
  unmatchable; the "(no Brazil)" variant removes them and accuracy
  recovers;
* "Addresses" carries similar dirty-data problems that depress recall.

Table sizes are scaled to laptop scale (hundreds to a few thousand rows);
the benchmarks compare the *shape* of the results with the paper, not the
absolute wall-clock numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.datasets import entities
from repro.datasets.corruptions import DirtinessConfig
from repro.datasets.generator import EMDataset, make_em_dataset
from repro.datasets.vocab import GENERIC_ADDRESS
from repro.table.schema import is_missing


@dataclass(frozen=True)
class PyMatcherScenario:
    """One Table 1 deployment: org, purpose, and dataset parameters."""

    key: str
    organization: str
    purpose: str
    domain: str  # entity factory name
    n_left: int
    n_right: int
    match_fraction: float
    dirtiness_level: str  # clean / light / moderate / heavy
    seed: int
    in_production: bool
    team: str


@dataclass(frozen=True)
class CloudTaskScenario:
    """One Table 2 CloudMatcher task."""

    key: str
    organization: str
    task: str
    domain: str
    n_left: int
    n_right: int
    match_fraction: float
    dirtiness_level: str
    use_crowd: bool
    label_budget: int
    seed: int
    hard_missing_fields: int | None = None  # Vehicles: pairs with >= k missing
    brazil_fraction: float = 0.0  # Vendors: share of Brazilian vendors
    generic_address_rate: float = 0.0  # Vendors/Addresses generic values
    drop_brazil: bool = False  # the "(no Brazil)" cleanup variant


_DIRTINESS = {
    "clean": DirtinessConfig.clean,
    "light": DirtinessConfig.light,
    "moderate": DirtinessConfig.moderate,
    "heavy": DirtinessConfig.heavy,
}


#: Table 1 — the eight PyMatcher deployments.
PYMATCHER_SCENARIOS: tuple[PyMatcherScenario, ...] = (
    PyMatcherScenario(
        "walmart", "Walmart", "Debug an EM pipeline in production",
        "product", 900, 900, 0.45, "moderate", 11, True, "1 researcher",
    ),
    PyMatcherScenario(
        "johnson_controls", "Johnson Controls", "Integrate equipment datasets",
        "product", 700, 650, 0.4, "light", 12, True, "2 part-time",
    ),
    PyMatcherScenario(
        "recruit", "Recruit Holdings", "Integrate disparate datasets",
        "restaurant", 800, 800, 0.5, "moderate", 13, True, "1 part-time",
    ),
    PyMatcherScenario(
        "marshfield", "Marshfield Clinic", "Integrate patient datasets",
        "person", 1000, 950, 0.5, "light", 14, False, "2 part-time",
    ),
    PyMatcherScenario(
        "economics_uw", "Economics (UW)", "Build a better EM pipeline",
        "citation", 900, 900, 0.5, "moderate", 15, True, "1 student",
    ),
    PyMatcherScenario(
        "land_use_uw", "Land Use (UW)", "Build a better EM pipeline",
        "ranch", 1200, 1100, 0.55, "moderate", 16, True, "1 student",
    ),
    PyMatcherScenario(
        "limnology_uw", "Limnology (UW)", "Integrate lake datasets",
        "address", 700, 700, 0.5, "light", 17, True, "1 part-time",
    ),
    PyMatcherScenario(
        "amfam", "American Family Insurance", "Integrate customer datasets",
        "person", 1000, 1000, 0.45, "moderate", 18, False, "2 part-time",
    ),
)


#: Table 2 — the thirteen CloudMatcher tasks.
CLOUDMATCHER_SCENARIOS: tuple[CloudTaskScenario, ...] = (
    CloudTaskScenario(
        "products_a", "Company A", "Match product catalogs", "product",
        600, 600, 0.5, "light", False, 400, 21,
    ),
    CloudTaskScenario(
        "products_b", "Company A", "Match products to listings", "product",
        900, 850, 0.45, "moderate", True, 600, 22,
    ),
    CloudTaskScenario(
        "songs", "Company B", "Match song metadata", "citation",
        800, 800, 0.5, "light", True, 500, 23,
    ),
    CloudTaskScenario(
        "papers", "Domain science (UW)", "Match citation records", "citation",
        700, 700, 0.55, "moderate", False, 500, 24,
    ),
    CloudTaskScenario(
        "restaurants", "Non-profit", "Match restaurant listings", "restaurant",
        300, 300, 0.5, "light", False, 300, 25,
    ),
    CloudTaskScenario(
        "people", "Company C", "Match customer records", "person",
        1200, 1200, 0.5, "light", False, 600, 26,
    ),
    CloudTaskScenario(
        "buildings", "Johnson Controls", "Match building equipment", "product",
        500, 480, 0.45, "moderate", False, 400, 27,
    ),
    CloudTaskScenario(
        "ranches", "Land Use (UW)", "Match cattle ranches", "ranch",
        1500, 1400, 0.5, "moderate", True, 800, 28,
    ),
    CloudTaskScenario(
        "books", "Company D", "Match book catalogs", "book",
        800, 800, 0.5, "light", False, 400, 29,
    ),
    CloudTaskScenario(
        "vehicles", "American Family Insurance", "Match vehicle records", "vehicle",
        900, 900, 0.45, "heavy", False, 700, 30,
        hard_missing_fields=1,
    ),
    CloudTaskScenario(
        "addresses", "American Family Insurance", "Match addresses", "address",
        1000, 1000, 0.5, "heavy", False, 700, 31,
        generic_address_rate=0.12,
    ),
    CloudTaskScenario(
        "vendors", "Company E", "Match vendor masters", "vendor",
        900, 900, 0.5, "moderate", False, 700, 32,
        brazil_fraction=0.3, generic_address_rate=0.85,
    ),
    CloudTaskScenario(
        "vendors_no_brazil", "Company E", "Match vendor masters (no Brazil)", "vendor",
        900, 900, 0.5, "moderate", False, 700, 32,
        brazil_fraction=0.3, generic_address_rate=0.85, drop_brazil=True,
    ),
)


def _vendor_factory(brazil_fraction: float):
    def factory(rng: random.Random):
        return entities.vendor(rng, brazilian=rng.random() < brazil_fraction)

    return factory


def _drop_brazil(dataset: EMDataset) -> EMDataset:
    """The data-cleaning step: remove Brazilian vendors from both sides."""
    keep_l = dataset.ltable.select(lambda row: row.get("country") != "Brazil")
    keep_r = dataset.rtable.select(lambda row: row.get("country") != "Brazil")
    l_ids = set(keep_l.column(dataset.l_key))
    r_ids = set(keep_r.column(dataset.r_key))
    gold = {(a, b) for a, b in dataset.gold_pairs if a in l_ids and b in r_ids}
    cleaned = EMDataset(
        name=dataset.name + "_no_brazil",
        ltable=keep_l,
        rtable=keep_r,
        gold_pairs=gold,
        l_key=dataset.l_key,
        r_key=dataset.r_key,
        notes=dict(dataset.notes),
    )
    return cleaned.register()


def _find_hard_pairs(dataset: EMDataset, min_missing: int) -> set[tuple[Any, Any]]:
    """Gold pairs whose right record has >= ``min_missing`` missing values."""
    r_index = dataset.rtable.index_by(dataset.r_key)
    hard = set()
    for l_id, r_id in dataset.gold_pairs:
        row = r_index[r_id]
        missing = sum(
            1 for column, value in row.items() if column != "id" and is_missing(value)
        )
        if missing >= min_missing:
            hard.add((l_id, r_id))
    return hard


def build_pymatcher_dataset(scenario: PyMatcherScenario) -> EMDataset:
    """Materialize a Table 1 scenario as an EMDataset."""
    dataset = make_em_dataset(
        entities.FACTORIES[scenario.domain],
        scenario.n_left,
        scenario.n_right,
        match_fraction=scenario.match_fraction,
        dirtiness=_DIRTINESS[scenario.dirtiness_level](),
        seed=scenario.seed,
        name=scenario.key,
    )
    dataset.notes["scenario"] = scenario
    return dataset


def build_cloudmatcher_dataset(scenario: CloudTaskScenario) -> EMDataset:
    """Materialize a Table 2 scenario as an EMDataset."""
    dirtiness = _DIRTINESS[scenario.dirtiness_level]()
    factory = entities.FACTORIES[scenario.domain]
    if scenario.domain == "vendor":
        # Generic addresses afflict only the *Brazilian* vendors, applied
        # in the post-pass below — not via the per-copy corruption config,
        # which is country-blind.
        factory = _vendor_factory(scenario.brazil_fraction)
    elif scenario.generic_address_rate:
        dirtiness.generic_value_rate["street"] = (
            scenario.generic_address_rate,
            GENERIC_ADDRESS,
        )
    dataset = make_em_dataset(
        factory,
        scenario.n_left,
        scenario.n_right,
        match_fraction=scenario.match_fraction,
        dirtiness=dirtiness,
        seed=scenario.seed,
        name=scenario.key,
    )
    if scenario.domain == "vendor" and scenario.generic_address_rate:
        # The generic-address pathology: Brazilian vendors (and only they)
        # entered a placeholder address instead of their real one.
        rng = random.Random(scenario.seed + 1)
        for table in (dataset.ltable, dataset.rtable):
            addresses = list(table.column("address"))
            for i, country in enumerate(table.column("country")):
                if country == "Brazil" and rng.random() < scenario.generic_address_rate:
                    addresses[i] = GENERIC_ADDRESS
            table.add_column("address", addresses)
    if scenario.drop_brazil:
        dataset = _drop_brazil(dataset)
    if scenario.hard_missing_fields is not None:
        dataset.notes["hard_pairs"] = _find_hard_pairs(
            dataset, scenario.hard_missing_fields
        )
    dataset.notes["scenario"] = scenario
    return dataset


def pymatcher_scenario(key: str) -> PyMatcherScenario:
    """Look up a Table 1 scenario by key."""
    for scenario in PYMATCHER_SCENARIOS:
        if scenario.key == key:
            return scenario
    raise KeyError(f"no PyMatcher scenario {key!r}")


def cloudmatcher_scenario(key: str) -> CloudTaskScenario:
    """Look up a Table 2 scenario by key."""
    for scenario in CLOUDMATCHER_SCENARIOS:
        if scenario.key == key:
            return scenario
    raise KeyError(f"no CloudMatcher scenario {key!r}")
