"""Entity factories: clean base records for each deployment domain."""

from __future__ import annotations

import random
from typing import Any

from repro.datasets import vocab

Entity = dict[str, Any]


def person(rng: random.Random) -> Entity:
    """A person with name/city/state (the paper's Figure 1 schema)."""
    return {
        "name": f"{rng.choice(vocab.FIRST_NAMES)} {rng.choice(vocab.LAST_NAMES)}",
        "city": rng.choice(vocab.CITIES),
        "state": rng.choice(vocab.STATES),
    }


def product(rng: random.Random) -> Entity:
    """A retail product (the Walmart-style scenario)."""
    brand = rng.choice(vocab.PRODUCT_BRANDS)
    noun = rng.choice(vocab.PRODUCT_NOUNS)
    qualifier = rng.choice(vocab.PRODUCT_QUALIFIERS)
    model = f"{rng.choice('ABCDEFGH')}{rng.randrange(100, 999)}"
    return {
        "title": f"{brand} {noun} {qualifier} {model}",
        "brand": brand,
        "model": model,
        "price": round(rng.uniform(10, 900), 2),
    }


def vehicle(rng: random.Random) -> Entity:
    """A vehicle record (the AmFam Vehicles scenario)."""
    return {
        "make": rng.choice(vocab.CAR_MAKES),
        "model": rng.choice(vocab.CAR_MODELS),
        "year": rng.randrange(1998, 2019),
        "vin_fragment": "".join(rng.choice("ABCDEFGHJKLMNPRSTUVWXYZ0123456789") for _ in range(8)),
    }


def address(rng: random.Random) -> Entity:
    """A postal address (the AmFam Addresses scenario)."""
    return {
        "street": (
            f"{rng.randrange(1, 9999)} {rng.choice(vocab.STREET_NAMES)} "
            f"{rng.choice(vocab.STREET_TYPES)}"
        ),
        "city": rng.choice(vocab.CITIES),
        "state": rng.choice(vocab.STATES),
        "zip": f"{rng.randrange(10000, 99999)}",
    }


def vendor(rng: random.Random, brazilian: bool = False) -> Entity:
    """A vendor with a name and address.

    Brazilian vendors are modelled after the paper's pathology: their
    names collide heavily (a handful of 'Comercio'-style house names), so
    once their addresses turn generic, "even users cannot match such
    vendors".
    """
    if brazilian:
        name = (
            f"{rng.choice(vocab.LAST_NAMES[:6])} Comercio "
            f"{rng.choice(('Ltda', 'SA'))}"
        )
        street = f"Rua {rng.choice(vocab.STREET_NAMES)} {rng.randrange(1, 2000)}"
        city = rng.choice(vocab.MUNICIPALITIES)
        country = "Brazil"
    else:
        name = (
            f"{rng.choice(vocab.LAST_NAMES)} "
            f"{rng.choice(vocab.PRODUCT_NOUNS)} {rng.choice(vocab.COMPANY_SUFFIXES)}"
        )
        street = (
            f"{rng.randrange(1, 9999)} {rng.choice(vocab.STREET_NAMES)} "
            f"{rng.choice(vocab.STREET_TYPES)}"
        )
        city = rng.choice(vocab.CITIES)
        country = "USA"
    return {"name": name, "address": street, "city": city, "country": country}


def ranch(rng: random.Random) -> Entity:
    """A Brazilian cattle ranch (the Land Use scenario, Appendix B)."""
    owner = f"{rng.choice(vocab.FIRST_NAMES)} {rng.choice(vocab.LAST_NAMES)}"
    name = (
        f"{rng.choice(vocab.RANCH_WORDS)} "
        f"{rng.choice(vocab.BOOK_TITLE_WORDS)} {rng.choice(vocab.LAST_NAMES)}"
    )
    return {
        "ranch_name": name,
        "owner": owner,
        "municipality": rng.choice(vocab.MUNICIPALITIES),
        "area_ha": round(rng.uniform(50, 20000), 1),
    }


def restaurant(rng: random.Random) -> Entity:
    """A restaurant (the classic EM benchmark domain)."""
    return {
        "name": (
            f"{rng.choice(vocab.CUISINES)} {rng.choice(vocab.RESTAURANT_WORDS)}"
        ),
        "street": (
            f"{rng.randrange(1, 999)} {rng.choice(vocab.STREET_NAMES)} "
            f"{rng.choice(vocab.STREET_TYPES)}"
        ),
        "city": rng.choice(vocab.CITIES),
        "cuisine": rng.choice(vocab.CUISINES),
    }


def citation(rng: random.Random) -> Entity:
    """A bibliographic record (the Economics / citations scenarios)."""
    n_authors = rng.randrange(1, 4)
    authors = ", ".join(
        f"{rng.choice(vocab.FIRST_NAMES)[0]}. {rng.choice(vocab.LAST_NAMES)}"
        for _ in range(n_authors)
    )
    title_words = rng.sample(vocab.PAPER_TOPIC_WORDS, 5)
    return {
        "title": " ".join(title_words).capitalize(),
        "authors": authors,
        "venue": rng.choice(vocab.VENUES),
        "year": rng.randrange(1995, 2019),
    }


def book(rng: random.Random) -> Entity:
    """A book with ISBN and page count (Figure 4's blocking-rule domain)."""
    return {
        "title": (
            f"The {rng.choice(vocab.BOOK_TITLE_WORDS)} "
            f"{rng.choice(vocab.BOOK_TITLE_WORDS)}"
        ),
        "author": f"{rng.choice(vocab.FIRST_NAMES)} {rng.choice(vocab.LAST_NAMES)}",
        "isbn": f"978{rng.randrange(10**9, 10**10 - 1)}",
        "pages": rng.randrange(80, 1200),
    }


FACTORIES = {
    "person": person,
    "product": product,
    "vehicle": vehicle,
    "address": address,
    "vendor": vendor,
    "ranch": ranch,
    "restaurant": restaurant,
    "citation": citation,
    "book": book,
}
