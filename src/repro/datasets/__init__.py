"""Synthetic EM datasets with gold standards, mirroring the deployments."""

from repro.datasets.corruptions import DirtinessConfig, corrupt_record, corrupt_value
from repro.datasets.generator import EMDataset, make_em_dataset, make_string_dataset
from repro.datasets.scenarios import (
    CLOUDMATCHER_SCENARIOS,
    PYMATCHER_SCENARIOS,
    CloudTaskScenario,
    PyMatcherScenario,
    build_cloudmatcher_dataset,
    build_pymatcher_dataset,
    cloudmatcher_scenario,
    pymatcher_scenario,
)

__all__ = [
    "CLOUDMATCHER_SCENARIOS",
    "CloudTaskScenario",
    "DirtinessConfig",
    "EMDataset",
    "PYMATCHER_SCENARIOS",
    "PyMatcherScenario",
    "build_cloudmatcher_dataset",
    "build_pymatcher_dataset",
    "cloudmatcher_scenario",
    "corrupt_record",
    "corrupt_value",
    "make_em_dataset",
    "make_string_dataset",
    "pymatcher_scenario",
]
