"""Smurf: self-service string matching using random forests (Section 5.3).

Smurf matches two *sets of strings* and "removes the need to label to
learn blocking rules": instead of Falcon's labeled blocking stage, Smurf
generates candidates directly with an unsupervised similarity join whose
threshold is auto-tuned, then spends labels only on actively learning the
random-forest matcher.  The paper reports this cuts labeling effort by
43-76% at the same accuracy; ``benchmarks/bench_smurf_reduction.py``
measures our version of that claim against Falcon on the same tasks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.blocking.base import make_candset
from repro.catalog.catalog import Catalog, get_catalog
from repro.datasets.generator import EMDataset
from repro.exceptions import ConfigurationError
from repro.falcon.active import ActiveLearningResult, active_learn_forest
from repro.features.extraction import extract_feature_vecs, feature_matrix
from repro.features.feature import FeatureTable, make_string_feature, make_token_feature
from repro.labeling.session import LabelingSession
from repro.runtime import EventStream, OperatorGraph, run_graph
from repro.simjoin.joins import set_sim_join
from repro.table.table import Table
from repro.text.sim.edit_based import JaroWinkler, Levenshtein
from repro.text.sim.token_based import Cosine, Jaccard
from repro.text.tokenizers import QgramTokenizer, WhitespaceTokenizer

Pair = tuple[Any, Any]


@dataclass
class SmurfConfig:
    """Knobs of the Smurf workflow."""

    candidate_budget_factor: float = 5.0  # max |C| as a multiple of max(|A|,|B|)
    thresholds: tuple[float, ...] = (0.8, 0.7, 0.6, 0.5, 0.4, 0.3)
    n_trees: int = 10
    alpha: float = 0.5
    seed_size: int = 20
    batch_size: int = 10
    max_iterations: int = 15
    matching_budget: int = 300
    random_state: int = 0


@dataclass
class SmurfResult:
    """Smurf's output plus the label accounting used by the benchmark."""

    candset: Table
    matches: Table
    predictions: list[int]
    join_threshold: float
    matching_stage: ActiveLearningResult
    questions: int  # labels spent — all in the matching stage
    machine_seconds: float
    notes: dict[str, Any] = field(default_factory=dict)

    @property
    def match_pairs(self) -> set[Pair]:
        l_col = next(c for c in self.matches.columns if c.startswith("ltable_"))
        r_col = next(c for c in self.matches.columns if c.startswith("rtable_"))
        return set(zip(self.matches.column(l_col), self.matches.column(r_col)))


def _string_feature_table(column: str) -> FeatureTable:
    """Features for a single string attribute pair."""
    ws = WhitespaceTokenizer(return_set=True)
    qg3 = QgramTokenizer(q=3, return_set=True)
    return FeatureTable(
        [
            make_token_feature(f"{column}_jaccard_qgm3", column, column, qg3, Jaccard(), "jaccard"),
            make_token_feature(f"{column}_jaccard_ws", column, column, ws, Jaccard(), "jaccard"),
            make_token_feature(f"{column}_cosine_qgm3", column, column, qg3, Cosine(), "cosine"),
            make_string_feature(f"{column}_lev_sim", column, column, Levenshtein(), "lev_sim"),
            make_string_feature(f"{column}_jaro_winkler", column, column, JaroWinkler(), "jaro_winkler"),
        ]
    )


def _auto_join(
    dataset: EMDataset, column: str, config: SmurfConfig
) -> tuple[list[Pair], float]:
    """Unsupervised candidate generation: loosen the q-gram Jaccard join
    threshold until the candidate set is as large as the budget allows."""
    tokenizer = QgramTokenizer(q=3, return_set=True)
    budget = int(
        config.candidate_budget_factor
        * max(dataset.ltable.num_rows, dataset.rtable.num_rows)
    )
    best: tuple[list[Pair], float] | None = None
    for threshold in config.thresholds:
        joined = set_sim_join(
            dataset.ltable,
            dataset.rtable,
            dataset.l_key,
            dataset.r_key,
            column,
            column,
            tokenizer,
            measure="jaccard",
            threshold=threshold,
        )
        pairs = sorted(zip(joined.column("l_id"), joined.column("r_id")))
        if len(pairs) > budget:
            break
        best = (pairs, threshold)
    if best is None or not best[0]:
        # Even the tightest threshold overflowed (or everything was empty):
        # fall back to the tightest threshold's output.
        joined = set_sim_join(
            dataset.ltable,
            dataset.rtable,
            dataset.l_key,
            dataset.r_key,
            column,
            column,
            tokenizer,
            measure="jaccard",
            threshold=config.thresholds[0],
        )
        best = (
            sorted(zip(joined.column("l_id"), joined.column("r_id"))),
            config.thresholds[0],
        )
    return best


def build_smurf_graph(
    dataset: EMDataset,
    session: LabelingSession,
    column: str,
    config: SmurfConfig,
    cat: Catalog,
) -> OperatorGraph:
    """Smurf's stages as a runtime operator graph.

    A chain — auto-tuned join, candset construction, featurization,
    active learning, prediction — over the shared artifact store.  Nodes
    are not ``isolated``: the session and catalog mutate parent state.
    """
    graph = OperatorGraph(f"smurf/{dataset.name}")

    def auto_join(store) -> None:
        pairs, threshold = _auto_join(dataset, column, config)
        if not pairs:
            raise ConfigurationError("Smurf's similarity join produced no candidates")
        store["pairs"] = pairs
        store["join_threshold"] = threshold

    def build_candset(store) -> None:
        store["candset"] = make_candset(
            store["pairs"],
            dataset.ltable,
            dataset.rtable,
            dataset.l_key,
            dataset.r_key,
            catalog=cat,
        )

    def featurize(store) -> None:
        features = _string_feature_table(column)
        fv = extract_feature_vecs(store["candset"], features, cat)
        store["feature_names"] = features.names()
        store["X"] = feature_matrix(fv, store["feature_names"], impute=False)

    def learn_matching(store) -> None:
        store["matching_stage"] = active_learn_forest(
            store["pairs"],
            store["X"],
            session,
            feature_names=store["feature_names"],
            n_trees=config.n_trees,
            seed_size=config.seed_size,
            batch_size=config.batch_size,
            max_iterations=config.max_iterations,
            max_questions=config.matching_budget,
            random_state=config.random_state,
        )

    def predict(store) -> None:
        X = store["X"]
        candset = store["candset"]
        predictions = store["matching_stage"].forest.predict_with_alpha(
            np.where(np.isnan(X), 0.0, X), alpha=config.alpha
        )
        store["predictions"] = [int(p) for p in predictions]
        match_rows = [i for i, p in enumerate(predictions) if p == 1]
        matches = candset.take(match_rows)
        meta = cat.get_candset_metadata(candset)
        cat.set_candset_metadata(
            matches, meta.key, meta.fk_ltable, meta.fk_rtable, meta.ltable, meta.rtable
        )
        store["matches"] = matches

    graph.add("auto_join", auto_join,
              description="auto-tune the q-gram Jaccard join threshold")
    graph.add("build_candset", build_candset, deps=("auto_join",))
    graph.add("featurize", featurize, deps=("build_candset",))
    graph.add("learn_matching", learn_matching, deps=("featurize",),
              description="actively learn the matching forest")
    graph.add("predict", predict, deps=("learn_matching",),
              description="alpha-vote the forest over the candset")
    return graph


def run_smurf(
    dataset: EMDataset,
    session: LabelingSession,
    column: str = "value",
    config: SmurfConfig | None = None,
    catalog: Catalog | None = None,
    events: EventStream | None = None,
) -> SmurfResult:
    """Run Smurf on a string-matching dataset (one string column per side).

    The stages execute as a :class:`repro.runtime.OperatorGraph`; pass an
    ``events`` stream to observe per-stage structured events.
    """
    config = config or SmurfConfig()
    cat = catalog if catalog is not None else get_catalog()
    dataset.register(cat)
    dataset.ltable.require_columns([column])
    dataset.rtable.require_columns([column])
    started = time.perf_counter()

    graph = build_smurf_graph(dataset, session, column, config, cat)
    store = run_graph(graph, events=events).store

    return SmurfResult(
        candset=store["candset"],
        matches=store["matches"],
        predictions=store["predictions"],
        join_threshold=store["join_threshold"],
        matching_stage=store["matching_stage"],
        questions=store["matching_stage"].questions,
        machine_seconds=time.perf_counter() - started,
    )
