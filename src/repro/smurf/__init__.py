"""Smurf: self-service string matching with label-free blocking."""

from repro.smurf.smurf import SmurfConfig, SmurfResult, run_smurf

__all__ = ["SmurfConfig", "SmurfResult", "run_smurf"]
