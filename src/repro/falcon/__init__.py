"""Falcon: self-service EM via active learning and learned blocking rules."""

from repro.falcon.active import ActiveLearningResult, active_learn_forest
from repro.falcon.falcon import FalconConfig, FalconResult, run_falcon
from repro.falcon.rules import (
    RuleEvaluation,
    evaluate_rules,
    extract_rules_from_forest,
    extract_rules_from_tree,
    rule_fires,
    select_precise_rules,
)

__all__ = [
    "ActiveLearningResult",
    "FalconConfig",
    "FalconResult",
    "RuleEvaluation",
    "active_learn_forest",
    "evaluate_rules",
    "extract_rules_from_forest",
    "extract_rules_from_tree",
    "rule_fires",
    "run_falcon",
    "select_precise_rules",
]
