"""Falcon: end-to-end self-service entity matching (Figure 3).

The lay user's only job is answering match/no-match questions.  Falcon:

1. samples tuple pairs from A x B,
2. actively learns a random forest F on the sample,
3. extracts candidate blocking rules from F's trees and keeps the precise
   executable ones,
4. executes the rules on A x B (as similarity joins) to get the candidate
   set C,
5. actively learns a second forest G on C, and
6. applies G to C with the alpha-voting rule to predict matches.

Note on execution semantics: rule execution via joins drops pairs whose
blocking attributes are missing (they cannot appear in a join output),
whereas per-pair rule evaluation lets such pairs survive.  This mirrors
the real system's behaviour, where blocking operates on indexed values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.blocking.base import make_candset
from repro.blocking.overlap import OverlapBlocker
from repro.blocking.rules import BlockingRule, execute_rules
from repro.catalog.catalog import Catalog, get_catalog
from repro.datasets.generator import EMDataset
from repro.exceptions import ConfigurationError
from repro.falcon.active import ActiveLearningResult, active_learn_forest
from repro.falcon.rules import (
    RuleEvaluation,
    evaluate_rules,
    extract_rules_from_forest,
    select_precise_rules,
)
from repro.features.extraction import extract_feature_vecs, feature_matrix
from repro.features.generation import (
    get_features_for_blocking,
    get_features_for_matching,
)
from repro.labeling.session import LabelingSession
from repro.table.table import Table

Pair = tuple[Any, Any]


@dataclass
class FalconConfig:
    """Knobs of the Falcon workflow (paper notation in comments)."""

    sample_size: int = 1500  # |S|, the pairs sampled for blocking-rule learning
    n_trees: int = 10  # n, forest size
    alpha: float = 0.5  # match iff >= alpha * n trees vote match
    seed_size: int = 20
    batch_size: int = 10
    max_iterations: int = 15
    blocking_budget: int = 200  # questions for stage 1
    matching_budget: int = 400  # questions for stage 2
    min_rule_precision: float = 0.95
    min_rule_coverage: int = 5
    max_rules: int = 4
    random_state: int = 0
    fallback_overlap_attr: str | None = None  # blocker if no rule qualifies


@dataclass
class FalconResult:
    """Everything Falcon produced, with the cost accounting of Table 2."""

    candset: Table
    matches: Table  # candset rows predicted as matches
    predictions: list[int]  # per-candset-row 0/1
    rules: list[BlockingRule]
    rule_evaluations: list[RuleEvaluation]
    blocking_stage: ActiveLearningResult
    matching_stage: ActiveLearningResult
    questions: int  # total questions asked
    machine_seconds: float
    used_fallback_blocker: bool = False
    notes: dict[str, Any] = field(default_factory=dict)

    @property
    def match_pairs(self) -> set[Pair]:
        """The predicted matching (l_id, r_id) pairs."""
        fk_columns = [c for c in self.matches.columns if c.startswith(("ltable_", "rtable_"))]
        l_col = next(c for c in fk_columns if c.startswith("ltable_"))
        r_col = next(c for c in fk_columns if c.startswith("rtable_"))
        return set(zip(self.matches.column(l_col), self.matches.column(r_col)))


def _sample_pairs(
    dataset: EMDataset, size: int, seed: int, catalog: Catalog
) -> Table:
    """Step 1: a sample of pairs from A x B with likely matches present.

    A uniform sample of A x B contains almost no matches (matches are a
    ~1/|A| fraction of the cross product), which would starve active
    learning.  Falcon's sampler solves this with cluster-based sampling;
    we approximate it with token-index probing: for sampled right tuples,
    the most token-overlapping left tuples form the likely-match half of
    the pool, and uniform random pairs form the likely-non-match half.
    """
    from collections import defaultdict

    from repro.sampling.down_sample import _row_tokens, _string_columns

    rng = np.random.default_rng(seed)
    l_ids = dataset.ltable.column(dataset.l_key)
    r_ids = dataset.rtable.column(dataset.r_key)
    pairs: set[Pair] = set()

    # Likely matches: probe an inverted index of left-table tokens.
    l_columns = _string_columns(dataset.ltable, dataset.l_key)
    r_columns = _string_columns(dataset.rtable, dataset.r_key)
    index: dict[str, list[int]] = defaultdict(list)
    l_tokens: list[set[str]] = []
    for i in range(dataset.ltable.num_rows):
        tokens = _row_tokens(dataset.ltable, l_columns, i)
        l_tokens.append(tokens)
        for token in tokens:
            index[token].append(i)
    probe_positions = rng.permutation(dataset.rtable.num_rows)[: size // 2]
    for j in probe_positions:
        tokens = _row_tokens(dataset.rtable, r_columns, int(j))
        counts: dict[int, int] = defaultdict(int)
        for token in tokens:
            # Skip stop-word-like tokens with huge posting lists.
            posting = index.get(token, ())
            if len(posting) <= max(20, dataset.ltable.num_rows // 20):
                for position in posting:
                    counts[position] += 1
        if not counts:
            continue
        best = sorted(counts, key=lambda p: -counts[p])[:2]
        for position in best:
            pairs.add((l_ids[position], r_ids[int(j)]))

    # Likely non-matches: uniform random pairs.
    need = size - len(pairs)
    for i, j in zip(
        rng.integers(0, len(l_ids), size=max(need * 2, 0)),
        rng.integers(0, len(r_ids), size=max(need * 2, 0)),
    ):
        if len(pairs) >= size:
            break
        pairs.add((l_ids[int(i)], r_ids[int(j)]))

    return make_candset(
        sorted(pairs), dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key,
        catalog=catalog,
    )


def run_falcon(
    dataset: EMDataset,
    session: LabelingSession,
    config: FalconConfig | None = None,
    catalog: Catalog | None = None,
) -> FalconResult:
    """Run the end-to-end Falcon workflow on an EM dataset."""
    config = config or FalconConfig()
    cat = catalog if catalog is not None else get_catalog()
    dataset.register(cat)
    started = time.perf_counter()

    # ---- Stage 1: learn blocking rules ------------------------------
    sample = _sample_pairs(dataset, config.sample_size, config.random_state, cat)
    blocking_features = get_features_for_blocking(
        dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key
    )
    sample_fv = extract_feature_vecs(sample, blocking_features, cat)
    feature_names = blocking_features.names()
    X_sample = feature_matrix(sample_fv, feature_names, impute=False)
    meta = cat.get_candset_metadata(sample)
    sample_pairs = list(
        zip(sample.column(meta.fk_ltable), sample.column(meta.fk_rtable))
    )
    blocking_stage = active_learn_forest(
        sample_pairs,
        X_sample,
        session,
        feature_names=feature_names,
        n_trees=config.n_trees,
        seed_size=config.seed_size,
        batch_size=config.batch_size,
        max_iterations=config.max_iterations,
        max_questions=config.blocking_budget,
        random_state=config.random_state,
    )

    # ---- Stage 2: extract, evaluate, and execute rules ---------------
    candidates = extract_rules_from_forest(blocking_stage.forest, blocking_features)
    X_labeled = np.where(np.isnan(X_sample[blocking_stage.labeled_indices]), 0.0, X_sample[blocking_stage.labeled_indices])
    y_labeled = np.array(blocking_stage.labels)
    rule_evaluations = evaluate_rules(candidates, X_labeled, y_labeled, feature_names)
    rules = select_precise_rules(
        rule_evaluations,
        min_precision=config.min_rule_precision,
        min_coverage=config.min_rule_coverage,
        max_rules=config.max_rules,
    )

    used_fallback = False
    if rules:
        survivor_pairs = execute_rules(
            rules, dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key
        )
        candset = make_candset(
            sorted(survivor_pairs),
            dataset.ltable,
            dataset.rtable,
            dataset.l_key,
            dataset.r_key,
            catalog=cat,
        )
    else:
        # No precise executable rule: fall back to a conservative overlap
        # blocker on the designated (or first string) attribute.
        used_fallback = True
        attr = config.fallback_overlap_attr
        if attr is None:
            attr = next(
                name for name in dataset.ltable.columns if name != dataset.l_key
            )
        blocker = OverlapBlocker(attr, overlap_size=1)
        candset = blocker.block_tables(
            dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key, catalog=cat
        )

    # ---- Stage 3: learn and apply the matcher ------------------------
    matching_features = get_features_for_matching(
        dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key
    )
    candset_fv = extract_feature_vecs(candset, matching_features, cat)
    match_feature_names = matching_features.names()
    X_cand = feature_matrix(candset_fv, match_feature_names, impute=False)
    cand_meta = cat.get_candset_metadata(candset)
    cand_pairs = list(
        zip(candset.column(cand_meta.fk_ltable), candset.column(cand_meta.fk_rtable))
    )
    if not cand_pairs:
        raise ConfigurationError("blocking produced an empty candidate set")
    matching_stage = active_learn_forest(
        cand_pairs,
        X_cand,
        session,
        feature_names=match_feature_names,
        n_trees=config.n_trees,
        seed_size=config.seed_size,
        batch_size=config.batch_size,
        max_iterations=config.max_iterations,
        max_questions=config.matching_budget,
        random_state=config.random_state + 1,
    )
    predictions = matching_stage.forest.predict_with_alpha(
        np.where(np.isnan(X_cand), 0.0, X_cand), alpha=config.alpha
    )
    match_rows = [i for i, p in enumerate(predictions) if p == 1]
    matches = candset.take(match_rows)
    cat.set_candset_metadata(
        matches,
        cand_meta.key,
        cand_meta.fk_ltable,
        cand_meta.fk_rtable,
        cand_meta.ltable,
        cand_meta.rtable,
    )

    return FalconResult(
        candset=candset,
        matches=matches,
        predictions=[int(p) for p in predictions],
        rules=rules,
        rule_evaluations=rule_evaluations,
        blocking_stage=blocking_stage,
        matching_stage=matching_stage,
        questions=session.questions_asked,
        machine_seconds=time.perf_counter() - started,
        used_fallback_blocker=used_fallback,
    )
