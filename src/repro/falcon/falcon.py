"""Falcon: end-to-end self-service entity matching (Figure 3).

The lay user's only job is answering match/no-match questions.  Falcon:

1. samples tuple pairs from A x B,
2. actively learns a random forest F on the sample,
3. extracts candidate blocking rules from F's trees and keeps the precise
   executable ones,
4. executes the rules on A x B (as similarity joins) to get the candidate
   set C,
5. actively learns a second forest G on C, and
6. applies G to C with the alpha-voting rule to predict matches.

Note on execution semantics: rule execution via joins drops pairs whose
blocking attributes are missing (they cannot appear in a join output),
whereas per-pair rule evaluation lets such pairs survive.  This mirrors
the real system's behaviour, where blocking operates on indexed values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.blocking.base import make_candset
from repro.blocking.overlap import OverlapBlocker
from repro.blocking.rules import BlockingRule, execute_rules
from repro.catalog.catalog import Catalog, get_catalog
from repro.datasets.generator import EMDataset
from repro.exceptions import ConfigurationError
from repro.falcon.active import ActiveLearningResult, active_learn_forest
from repro.falcon.rules import (
    RuleEvaluation,
    evaluate_rules,
    extract_rules_from_forest,
    select_precise_rules,
)
from repro.features.extraction import extract_feature_vecs, feature_matrix
from repro.features.generation import (
    get_features_for_blocking,
    get_features_for_matching,
)
from repro.labeling.session import LabelingSession
from repro.obs import get_registry
from repro.runtime import EventStream, OperatorGraph, run_graph
from repro.table.table import Table

Pair = tuple[Any, Any]


@dataclass
class FalconConfig:
    """Knobs of the Falcon workflow (paper notation in comments)."""

    sample_size: int = 1500  # |S|, the pairs sampled for blocking-rule learning
    n_trees: int = 10  # n, forest size
    alpha: float = 0.5  # match iff >= alpha * n trees vote match
    seed_size: int = 20
    batch_size: int = 10
    max_iterations: int = 15
    blocking_budget: int = 200  # questions for stage 1
    matching_budget: int = 400  # questions for stage 2
    min_rule_precision: float = 0.95
    min_rule_coverage: int = 5
    max_rules: int = 4
    random_state: int = 0
    fallback_overlap_attr: str | None = None  # blocker if no rule qualifies


@dataclass
class FalconResult:
    """Everything Falcon produced, with the cost accounting of Table 2."""

    candset: Table
    matches: Table  # candset rows predicted as matches
    predictions: list[int]  # per-candset-row 0/1
    rules: list[BlockingRule]
    rule_evaluations: list[RuleEvaluation]
    blocking_stage: ActiveLearningResult
    matching_stage: ActiveLearningResult
    questions: int  # total questions asked
    machine_seconds: float
    used_fallback_blocker: bool = False
    notes: dict[str, Any] = field(default_factory=dict)

    @property
    def match_pairs(self) -> set[Pair]:
        """The predicted matching (l_id, r_id) pairs."""
        fk_columns = [c for c in self.matches.columns if c.startswith(("ltable_", "rtable_"))]
        l_col = next(c for c in fk_columns if c.startswith("ltable_"))
        r_col = next(c for c in fk_columns if c.startswith("rtable_"))
        return set(zip(self.matches.column(l_col), self.matches.column(r_col)))


def _sample_pairs(
    dataset: EMDataset, size: int, seed: int, catalog: Catalog
) -> Table:
    """Step 1: a sample of pairs from A x B with likely matches present.

    A uniform sample of A x B contains almost no matches (matches are a
    ~1/|A| fraction of the cross product), which would starve active
    learning.  Falcon's sampler solves this with cluster-based sampling;
    we approximate it with token-index probing: for sampled right tuples,
    the most token-overlapping left tuples form the likely-match half of
    the pool, and uniform random pairs form the likely-non-match half.
    """
    from collections import defaultdict

    from repro.sampling.down_sample import _row_tokens, _string_columns

    rng = np.random.default_rng(seed)
    l_ids = dataset.ltable.column(dataset.l_key)
    r_ids = dataset.rtable.column(dataset.r_key)
    pairs: set[Pair] = set()

    # Likely matches: probe an inverted index of left-table tokens.
    l_columns = _string_columns(dataset.ltable, dataset.l_key)
    r_columns = _string_columns(dataset.rtable, dataset.r_key)
    index: dict[str, list[int]] = defaultdict(list)
    l_tokens: list[set[str]] = []
    for i in range(dataset.ltable.num_rows):
        tokens = _row_tokens(dataset.ltable, l_columns, i)
        l_tokens.append(tokens)
        for token in tokens:
            index[token].append(i)
    probe_positions = rng.permutation(dataset.rtable.num_rows)[: size // 2]
    for j in probe_positions:
        tokens = _row_tokens(dataset.rtable, r_columns, int(j))
        counts: dict[int, int] = defaultdict(int)
        for token in tokens:
            # Skip stop-word-like tokens with huge posting lists.
            posting = index.get(token, ())
            if len(posting) <= max(20, dataset.ltable.num_rows // 20):
                for position in posting:
                    counts[position] += 1
        if not counts:
            continue
        best = sorted(counts, key=lambda p: -counts[p])[:2]
        for position in best:
            pairs.add((l_ids[position], r_ids[int(j)]))

    # Likely non-matches: uniform random pairs.
    need = size - len(pairs)
    for i, j in zip(
        rng.integers(0, len(l_ids), size=max(need * 2, 0)),
        rng.integers(0, len(r_ids), size=max(need * 2, 0)),
    ):
        if len(pairs) >= size:
            break
        pairs.add((l_ids[int(i)], r_ids[int(j)]))

    return make_candset(
        sorted(pairs), dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key,
        catalog=catalog,
    )


def build_falcon_graph(
    dataset: EMDataset,
    session: LabelingSession,
    config: FalconConfig,
    cat: Catalog,
) -> OperatorGraph:
    """Falcon's stages as a runtime operator graph (Figure 3 as a DAG).

    Every node reads and writes the shared artifact store; branches that
    are independent in the figure (sampling vs. feature generation) are
    independent in the graph.  Nodes are not ``isolated`` — the labeling
    session and catalog mutate in-process state that must stay in the
    parent.
    """
    graph = OperatorGraph(f"falcon/{dataset.name}")

    # The fallback blocker is constructed once per run, outside the
    # node bodies: its (attr, overlap) configuration is fixed by the
    # config/dataset, and its underlying tokenization + prefix index are
    # IndexStore artifacts, so re-running the blocking stage (retries,
    # checkpoint resumes, repeated Falcon runs over the same tables)
    # reuses the same index instead of rebuilding it each round.
    fallback_attr = config.fallback_overlap_attr
    if fallback_attr is None:
        fallback_attr = next(
            name for name in dataset.ltable.columns if name != dataset.l_key
        )
    fallback_blocker = OverlapBlocker(fallback_attr, overlap_size=1)

    def observe_stage(stage: str, result: ActiveLearningResult) -> None:
        registry = get_registry()
        registry.counter("falcon_iterations_total", stage=stage).inc(result.iterations)
        registry.counter("falcon_questions_total", stage=stage).inc(result.questions)
        registry.counter("falcon_labels_total", stage=stage).inc(len(result.labels))

    def sample(store) -> None:
        store["sample"] = _sample_pairs(
            dataset, config.sample_size, config.random_state, cat
        )

    def blocking_features(store) -> None:
        store["blocking_features"] = get_features_for_blocking(
            dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key
        )

    def sample_vectors(store) -> None:
        features = store["blocking_features"]
        sample_fv = extract_feature_vecs(store["sample"], features, cat)
        store["feature_names"] = features.names()
        store["X_sample"] = feature_matrix(
            sample_fv, store["feature_names"], impute=False
        )
        meta = cat.get_candset_metadata(store["sample"])
        store["sample_pairs"] = list(
            zip(
                store["sample"].column(meta.fk_ltable),
                store["sample"].column(meta.fk_rtable),
            )
        )

    def learn_blocking(store) -> None:
        store["blocking_stage"] = active_learn_forest(
            store["sample_pairs"],
            store["X_sample"],
            session,
            feature_names=store["feature_names"],
            n_trees=config.n_trees,
            seed_size=config.seed_size,
            batch_size=config.batch_size,
            max_iterations=config.max_iterations,
            max_questions=config.blocking_budget,
            random_state=config.random_state,
        )
        observe_stage("blocking", store["blocking_stage"])

    def extract_rules(store) -> None:
        store["rule_candidates"] = extract_rules_from_forest(
            store["blocking_stage"].forest, store["blocking_features"]
        )

    def evaluate(store) -> None:
        stage = store["blocking_stage"]
        X_labeled = np.where(
            np.isnan(store["X_sample"][stage.labeled_indices]),
            0.0,
            store["X_sample"][stage.labeled_indices],
        )
        store["rule_evaluations"] = evaluate_rules(
            store["rule_candidates"],
            X_labeled,
            np.array(stage.labels),
            store["feature_names"],
        )

    def select(store) -> None:
        store["rules"] = select_precise_rules(
            store["rule_evaluations"],
            min_precision=config.min_rule_precision,
            min_coverage=config.min_rule_coverage,
            max_rules=config.max_rules,
        )
        get_registry().gauge("falcon_rules_retained").set(len(store["rules"]))

    def execute_blocking(store) -> None:
        rules = store["rules"]
        if rules:
            survivor_pairs = execute_rules(
                rules, dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key
            )
            store["candset"] = make_candset(
                sorted(survivor_pairs),
                dataset.ltable,
                dataset.rtable,
                dataset.l_key,
                dataset.r_key,
                catalog=cat,
            )
            store["used_fallback"] = False
        else:
            # No precise executable rule: fall back to the conservative
            # overlap blocker on the designated (or first string)
            # attribute, constructed once at graph build time.
            store["candset"] = fallback_blocker.block_tables(
                dataset.ltable,
                dataset.rtable,
                dataset.l_key,
                dataset.r_key,
                catalog=cat,
            )
            store["used_fallback"] = True
        registry = get_registry()
        registry.counter("falcon_candidates_total").inc(store["candset"].num_rows)
        if store["used_fallback"]:
            registry.counter("falcon_fallback_total").inc()

    def matching_features(store) -> None:
        store["matching_features"] = get_features_for_matching(
            dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key
        )

    def candidate_vectors(store) -> None:
        candset = store["candset"]
        features = store["matching_features"]
        candset_fv = extract_feature_vecs(candset, features, cat)
        store["match_feature_names"] = features.names()
        store["X_cand"] = feature_matrix(
            candset_fv, store["match_feature_names"], impute=False
        )
        cand_meta = cat.get_candset_metadata(candset)
        store["cand_pairs"] = list(
            zip(candset.column(cand_meta.fk_ltable), candset.column(cand_meta.fk_rtable))
        )
        if not store["cand_pairs"]:
            raise ConfigurationError("blocking produced an empty candidate set")

    def learn_matching(store) -> None:
        store["matching_stage"] = active_learn_forest(
            store["cand_pairs"],
            store["X_cand"],
            session,
            feature_names=store["match_feature_names"],
            n_trees=config.n_trees,
            seed_size=config.seed_size,
            batch_size=config.batch_size,
            max_iterations=config.max_iterations,
            max_questions=config.matching_budget,
            random_state=config.random_state + 1,
        )
        observe_stage("matching", store["matching_stage"])

    def predict(store) -> None:
        candset = store["candset"]
        predictions = store["matching_stage"].forest.predict_with_alpha(
            np.where(np.isnan(store["X_cand"]), 0.0, store["X_cand"]),
            alpha=config.alpha,
        )
        store["predictions"] = [int(p) for p in predictions]
        match_rows = [i for i, p in enumerate(predictions) if p == 1]
        matches = candset.take(match_rows)
        cand_meta = cat.get_candset_metadata(candset)
        cat.set_candset_metadata(
            matches,
            cand_meta.key,
            cand_meta.fk_ltable,
            cand_meta.fk_rtable,
            cand_meta.ltable,
            cand_meta.rtable,
        )
        store["matches"] = matches
        get_registry().counter("falcon_matches_total").inc(len(match_rows))

    graph.add("sample", sample, description="sample pairs from A x B")
    graph.add("blocking_features", blocking_features, description="generate blocking features")
    graph.add("sample_vectors", sample_vectors, deps=("sample", "blocking_features"))
    graph.add("learn_blocking", learn_blocking, deps=("sample_vectors",),
              description="actively learn the blocking forest")
    graph.add("extract_rules", extract_rules, deps=("learn_blocking",))
    graph.add("evaluate_rules", evaluate, deps=("extract_rules",))
    graph.add("select_rules", select, deps=("evaluate_rules",))
    graph.add("execute_blocking", execute_blocking, deps=("select_rules",),
              description="execute rules as similarity joins (or fallback blocker)")
    graph.add("matching_features", matching_features, description="generate matching features")
    graph.add("candidate_vectors", candidate_vectors,
              deps=("execute_blocking", "matching_features"))
    graph.add("learn_matching", learn_matching, deps=("candidate_vectors",),
              description="actively learn the matching forest")
    graph.add("predict", predict, deps=("learn_matching",),
              description="alpha-vote the matching forest over the candset")
    return graph


def run_falcon(
    dataset: EMDataset,
    session: LabelingSession,
    config: FalconConfig | None = None,
    catalog: Catalog | None = None,
    events: EventStream | None = None,
    optimize: bool = False,
) -> FalconResult:
    """Run the end-to-end Falcon workflow on an EM dataset.

    The stages execute as a :class:`repro.runtime.OperatorGraph`; pass an
    ``events`` stream to observe per-stage structured events with wall
    timings (or export them as JSONL afterwards).  ``optimize=True``
    routes the graph through the :mod:`repro.plan` cost-based optimizer:
    per-stage costs of prior runs (persisted alongside the index
    artifacts) drive the schedule, and with no stats yet the plan is a
    no-op.
    """
    config = config or FalconConfig()
    cat = catalog if catalog is not None else get_catalog()
    dataset.register(cat)
    started = time.perf_counter()

    graph = build_falcon_graph(dataset, session, config, cat)
    if optimize:
        from repro.plan import run_planned

        store = run_planned(graph, events=events).store
    else:
        store = run_graph(graph, events=events).store

    return FalconResult(
        candset=store["candset"],
        matches=store["matches"],
        predictions=store["predictions"],
        rules=store["rules"],
        rule_evaluations=store["rule_evaluations"],
        blocking_stage=store["blocking_stage"],
        matching_stage=store["matching_stage"],
        questions=session.questions_asked,
        machine_seconds=time.perf_counter() - started,
        used_fallback_blocker=store["used_fallback"],
    )
