"""Blocking-rule extraction from random-forest trees (Figure 4).

Falcon Step 3: every root-to-"No"-leaf branch of every tree in the learned
forest is a *candidate blocking rule* — a conjunction of predicates that,
when satisfied, predicts non-match and may therefore drop the pair during
blocking.  Candidate rules are then evaluated for precision (here: against
the labels collected during active learning, standing in for the lay
user's rule review) and only precise, join-executable rules are retained.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blocking.rules import BlockingRule, Predicate
from repro.features.feature import FeatureTable
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier, TreeNode


def extract_rules_from_tree(
    tree: DecisionTreeClassifier,
    feature_table: FeatureTable,
    negative_label: int = 0,
    max_depth: int | None = None,
) -> list[BlockingRule]:
    """Candidate blocking rules: one per root-to-negative-leaf path."""
    tree.check_fitted()
    names = tree.feature_names_
    rules: list[BlockingRule] = []

    def walk(node: TreeNode, predicates: list[Predicate]) -> None:
        if node.is_leaf:
            label = int(tree.classes_[node.prediction])
            if label == negative_label and predicates:
                rules.append(BlockingRule(tuple(predicates)))
            return
        if max_depth is not None and len(predicates) >= max_depth:
            return
        feature = feature_table.get(names[node.feature])
        walk(node.left, predicates + [Predicate(feature, "<=", node.threshold)])
        walk(node.right, predicates + [Predicate(feature, ">", node.threshold)])

    walk(tree.root_, [])
    return rules


def extract_rules_from_forest(
    forest: RandomForestClassifier,
    feature_table: FeatureTable,
    negative_label: int = 0,
    max_depth: int | None = None,
) -> list[BlockingRule]:
    """Candidate rules from every tree of the forest, named and deduplicated."""
    seen: set[str] = set()
    rules: list[BlockingRule] = []
    for t, tree in enumerate(forest.trees_):
        for rule in extract_rules_from_tree(tree, feature_table, negative_label, max_depth):
            signature = " AND ".join(str(p) for p in rule.predicates)
            if signature in seen:
                continue
            seen.add(signature)
            rule.name = f"rule_{len(rules) + 1}(tree_{t})"
            rules.append(rule)
    return rules


def rule_fires(
    rule: BlockingRule, X: np.ndarray, feature_names: list[str]
) -> np.ndarray:
    """Boolean mask of the rows (feature vectors) the rule would drop."""
    position = {name: i for i, name in enumerate(feature_names)}
    mask = np.ones(X.shape[0], dtype=bool)
    for predicate in rule.predicates:
        values = X[:, position[predicate.feature.name]]
        if predicate.op == "<=":
            holds = values <= predicate.threshold
        elif predicate.op == "<":
            holds = values < predicate.threshold
        elif predicate.op == ">=":
            holds = values >= predicate.threshold
        else:
            holds = values > predicate.threshold
        holds &= ~np.isnan(values)
        mask &= holds
    return mask


@dataclass
class RuleEvaluation:
    """Precision/coverage of one candidate rule on labeled data."""

    rule: BlockingRule
    coverage: int  # labeled pairs the rule drops
    mistakes: int  # dropped pairs that were actually matches
    precision: float
    executable: bool


def evaluate_rules(
    rules: list[BlockingRule],
    X: np.ndarray,
    y: np.ndarray,
    feature_names: list[str],
    negative_label: int = 0,
) -> list[RuleEvaluation]:
    """Score each candidate rule on the labeled sample."""
    evaluations = []
    for rule in rules:
        fires = rule_fires(rule, X, feature_names)
        coverage = int(fires.sum())
        mistakes = int(np.sum(fires & (y != negative_label)))
        precision = (coverage - mistakes) / coverage if coverage else 0.0
        evaluations.append(
            RuleEvaluation(rule, coverage, mistakes, precision, rule.is_executable)
        )
    return evaluations


def select_precise_rules(
    evaluations: list[RuleEvaluation],
    min_precision: float = 0.95,
    min_coverage: int = 5,
    max_rules: int | None = None,
    require_executable: bool = True,
) -> list[BlockingRule]:
    """Retain precise, sufficiently-covering (and executable) rules.

    Rules are ranked by (precision, coverage); ``max_rules`` caps how many
    survive — more rules means more aggressive blocking, since a pair must
    survive *every* rule.
    """
    qualified = [
        evaluation
        for evaluation in evaluations
        if evaluation.precision >= min_precision
        and evaluation.coverage >= min_coverage
        and (evaluation.executable or not require_executable)
    ]
    qualified.sort(key=lambda e: (-e.precision, -e.coverage))
    if max_rules is not None:
        qualified = qualified[:max_rules]
    return [evaluation.rule for evaluation in qualified]
