"""Active learning of a random forest with a (simulated) lay user.

Falcon's two learning stages (Steps 2 and 5 in Figure 3) are the same
loop: maintain a labeled set, fit a random forest, ask the user to label
the pairs the forest is most uncertain about (highest vote entropy), and
repeat.  The lay user only ever answers match/no-match questions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.exceptions import BudgetExhaustedError, ConfigurationError
from repro.labeling.session import LabelingSession
from repro.ml.forest import RandomForestClassifier

Pair = tuple[Any, Any]


@dataclass
class ActiveLearningResult:
    """Outcome of one active-learning stage."""

    forest: RandomForestClassifier
    labeled_indices: list[int]  # positions into the pool
    labels: list[int]  # aligned with labeled_indices
    iterations: int
    questions: int  # questions asked in this stage


def _seed_indices(
    X: np.ndarray, seed_size: int, rng: np.random.Generator
) -> list[int]:
    """Pick the initial batch: half highest-similarity rows (likely
    matches), half uniform (likely non-matches).

    Similarity is approximated by the mean feature value per row — all our
    features are similarities, so high mean means "looks like a match".
    """
    n = X.shape[0]
    seed_size = min(seed_size, n)
    with np.errstate(all="ignore"):
        means = np.nanmean(X, axis=1)
    means = np.where(np.isnan(means), 0.0, means)
    order = np.argsort(-means)
    n_top = seed_size // 2
    picked = list(order[:n_top])
    remaining = [i for i in range(n) if i not in set(picked)]
    rng.shuffle(remaining)
    picked.extend(remaining[: seed_size - n_top])
    return picked


def active_learn_forest(
    pool_pairs: list[Pair],
    pool_X: np.ndarray,
    session: LabelingSession,
    feature_names: list[str] | None = None,
    n_trees: int = 10,
    seed_size: int = 20,
    batch_size: int = 10,
    max_iterations: int = 20,
    max_questions: int | None = None,
    random_state: int | None = 0,
) -> ActiveLearningResult:
    """Actively learn a random forest over a pool of candidate pairs.

    ``pool_pairs[i]`` is the (l_id, r_id) pair whose feature vector is
    ``pool_X[i]``; NaNs in the pool are imputed to 0 (missing similarity
    is treated as dissimilar).  The loop stops at ``max_iterations``, when
    the forest is unanimous on every unlabeled pair, or when the labeling
    budget (the session's, or ``max_questions`` for this stage) runs out.
    """
    if len(pool_pairs) != pool_X.shape[0]:
        raise ConfigurationError(
            f"{len(pool_pairs)} pairs but {pool_X.shape[0]} feature rows"
        )
    if pool_X.shape[0] == 0:
        raise ConfigurationError("cannot actively learn from an empty pool")
    X = np.where(np.isnan(pool_X), 0.0, pool_X)
    rng = np.random.default_rng(random_state)
    questions_before = session.questions_asked
    stage_budget = max_questions

    def can_ask(n: int) -> bool:
        if not session.has_budget(n):
            return False
        if stage_budget is None:
            return True
        return (session.questions_asked - questions_before) + n <= stage_budget

    labeled: dict[int, int] = {}

    def ask(index: int) -> None:
        labeled[index] = session.ask(pool_pairs[index])

    # ---- seeding ----
    for index in _seed_indices(X, seed_size, rng):
        if not can_ask(1):
            break
        ask(index)
    # Ensure both classes are present if at all possible.
    attempts = 0
    while len(set(labeled.values())) < 2 and attempts < 50 and can_ask(1):
        candidates = [i for i in range(X.shape[0]) if i not in labeled]
        if not candidates:
            break
        ask(int(rng.choice(candidates)))
        attempts += 1

    if not labeled:
        raise BudgetExhaustedError("no labeling budget for active learning")

    # min_samples_leaf=2 keeps leaf class distributions impure, so the
    # forest's probabilities stay informative for uncertainty sampling
    # (fully-grown trees are certain about everything after a handful of
    # labels and the loop would stop prematurely).
    forest = RandomForestClassifier(
        n_estimators=n_trees, min_samples_leaf=2, random_state=random_state
    )
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        indices = sorted(labeled)
        y = np.array([labeled[i] for i in indices])
        if len(set(labeled.values())) < 2:
            break  # a one-class forest cannot drive uncertainty sampling
        forest.fit(X[indices], y, feature_names=feature_names)
        unlabeled = np.array([i for i in range(X.shape[0]) if i not in labeled])
        if unlabeled.size == 0 or not can_ask(1):
            break
        # Uncertainty = closeness of the forest's soft match probability
        # to 0.5.  Like Falcon, the loop runs for a fixed number of
        # iterations rather than stopping when the forest *claims*
        # certainty — early in training the forest is confidently wrong
        # about exactly the borderline pairs that matter.
        positive = int(np.searchsorted(forest.classes_, 1))
        proba = forest.predict_proba(X[unlabeled])[:, positive]
        uncertainty = 1.0 - np.abs(2.0 * proba - 1.0)
        # Ties (e.g. a sea of zero-uncertainty pairs) are broken toward
        # higher match probability so follow-up rounds still explore the
        # match-like region.
        order = unlabeled[np.lexsort((-proba, -uncertainty))]
        asked_this_round = 0
        for index in order[:batch_size]:
            if not can_ask(1):
                break
            ask(int(index))
            asked_this_round += 1
        if asked_this_round == 0:
            break

    indices = sorted(labeled)
    y = np.array([labeled[i] for i in indices])
    if len(set(y.tolist())) >= 1:
        forest.fit(X[indices], y, feature_names=feature_names)
    return ActiveLearningResult(
        forest=forest,
        labeled_indices=indices,
        labels=[labeled[i] for i in indices],
        iterations=iterations,
        questions=session.questions_asked - questions_before,
    )
