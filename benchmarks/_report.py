"""Reporting helpers shared by the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  The
rendered output is written straight to the real stdout (bypassing pytest's
capture, so it shows up in ``pytest benchmarks/`` runs) and archived under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def report(experiment_id: str, title: str, body: str) -> None:
    """Emit a reproduction block to the console and the results archive.

    Alongside the rendered text, the current metrics registry is archived
    as ``<experiment_id>.metrics.jsonl`` so each result carries the
    telemetry (probe counts, cache hit rates, node timings) of the run
    that produced it.
    """
    block = f"\n=== {experiment_id}: {title} ===\n{body}\n"
    sys.__stdout__.write(block)
    sys.__stdout__.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{experiment_id}.txt"
    out.write_text(block, encoding="utf-8")
    from repro.obs import get_registry, write_metrics_jsonl

    registry = get_registry()
    if len(registry):
        write_metrics_jsonl(registry, RESULTS_DIR / f"{experiment_id}.metrics.jsonl")


def prf(predicted: set, gold: set) -> tuple[float, float, float]:
    """Precision/recall/F1 of a predicted pair set against gold."""
    tp = len(predicted & gold)
    precision = tp / len(predicted) if predicted else 0.0
    recall = tp / len(gold) if gold else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return precision, recall, f1
