"""Ablation — the matcher zoo on one deployment.

The guide's matching step cross-validates multiple learning-based
matchers and picks the winner; the paper's systems case for ecosystems is
that such comparisons are cheap to assemble.  This bench cross-validates
all six feature-based matchers (tree, forest, boosted trees, logistic
regression, SVM, naive Bayes) plus the raw-text DeepMatcher on the same
labeled sample and reports the leaderboard.
"""

from __future__ import annotations

import numpy as np
from _report import format_table, report
from conftest import once

from repro.blocking import OverlapBlocker
from repro.datasets import build_pymatcher_dataset, pymatcher_scenario
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.labeling import LabelingSession, OracleLabeler
from repro.matchers import (
    DeepMatcher,
    DTMatcher,
    KNNMatcher,
    LogRegMatcher,
    NBMatcher,
    RFMatcher,
    SVMMatcher,
    XGMatcher,
    select_matcher,
)
from repro.ml.metrics import precision_recall_f1
from repro.ml.model_selection import train_test_split
from repro.sampling import weighted_sample_candset


def run():
    dataset = build_pymatcher_dataset(pymatcher_scenario("recruit"))
    candset = OverlapBlocker("name", overlap_size=2).block_tables(
        dataset.ltable, dataset.rtable, "id", "id"
    )
    sample = weighted_sample_candset(candset, 700, seed=0)
    LabelingSession(OracleLabeler(dataset.gold_pairs)).label_candset(sample)
    features = get_features_for_matching(dataset.ltable, dataset.rtable)
    fv = extract_feature_vecs(sample, features, label_column="label")

    matchers = [
        DTMatcher(),
        RFMatcher(n_estimators=10, random_state=0),
        XGMatcher(n_estimators=40, random_state=0),
        LogRegMatcher(),
        SVMMatcher(),
        NBMatcher(),
        KNNMatcher(n_neighbors=5),
    ]
    selection = select_matcher(matchers, fv, features.names(), n_splits=5)
    rows = [dict(row) for row in selection.scores.rows()]

    # DeepMatcher consumes raw text, so it gets its own holdout protocol.
    labels = np.array(sample.column("label"))
    indices = np.arange(sample.num_rows)
    train_idx, test_idx, _, _ = train_test_split(
        indices.reshape(-1, 1), labels, test_size=0.3, random_state=0
    )
    train = sample.take([int(i) for i in train_idx[:, 0]])
    test = sample.take([int(i) for i in test_idx[:, 0]])
    from repro.catalog import get_catalog

    catalog = get_catalog()
    meta = catalog.get_candset_metadata(sample)
    for part in (train, test):
        catalog.set_candset_metadata(
            part, meta.key, meta.fk_ltable, meta.fk_rtable, meta.ltable, meta.rtable
        )
    deep = DeepMatcher(attributes=["name", "street", "city"], epochs=60, random_state=0)
    deep.fit(train)
    predictions = deep.predict(test, append=False, output_column="p")
    precision, recall, f1 = precision_recall_f1(
        np.array(test.column("label")), np.array(predictions.column("p"))
    )
    rows.append(
        {"matcher": "DeepMatcher (holdout)", "precision": precision,
         "recall": recall, "f1": f1}
    )
    for row in rows:
        for metric in ("precision", "recall", "f1"):
            row[metric] = f"{row[metric]:.3f}"
    return rows, selection


def test_ablation_matcher_zoo(benchmark):
    rows, selection = once(benchmark, run)
    report(
        "ablation_matchers",
        "The matcher zoo, cross-validated on one deployment",
        format_table(rows, columns=["matcher", "precision", "recall", "f1"])
        + f"\n\nSelected matcher: {selection.best_matcher.name} "
          f"(F1 = {selection.best_score:.3f})"
        + "\nExpected shape: tree ensembles (forest, boosted trees) are at"
          "\nor near the top; the selected matcher clears F1 0.85.",
    )
    assert selection.best_score > 0.85
    f1_by_name = {row["matcher"]: float(row["f1"]) for row in rows}
    ensemble_best = max(f1_by_name["RFMatcher"], f1_by_name["XGMatcher"])
    assert ensemble_best >= max(f1_by_name.values()) - 0.05
