"""Micro-benchmark — why py_stringsimjoin exists: filtered vs naive joins.

Table 3's blocking step ships ``py_stringsimjoin`` because naive string
joins over two tables are quadratic.  This bench joins two name tables at
increasing sizes with the filter-based join and the brute-force reference
and reports the speedup (and verifies identical output).  These are also
the proper pytest-benchmark micro-measurements of the suite (multiple
rounds, statistics).

``test_simjoin_kernel_speedup`` additionally pits the integer-kernel join
(:mod:`repro.perf`) against a faithful copy of the original string-set
implementation (``_seed_set_sim_join`` below), serial and with
``n_jobs=4``, and archives the numbers as ``simjoin_kernels``.
"""

from __future__ import annotations

import os
import random
import time
from collections import defaultdict

from _report import format_table, report

from repro.datasets.vocab import CITIES, FIRST_NAMES, LAST_NAMES
from repro.perf.kernels import BOUND_EPS
from repro.simjoin import naive_set_sim_join, set_sim_join
from repro.simjoin.filters import (
    TokenOrder,
    overlap_lower_bound,
    prefix_length,
    similarity,
    size_bounds,
)
from repro.table import Table
from repro.text.tokenizers import QgramTokenizer, Tokenizer

TOKENIZER = QgramTokenizer(q=3, return_set=True)
N_JOBS = 4


def make_tables(n: int, seed: int = 0):
    rng = random.Random(seed)

    def name():
        return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)} {rng.choice(CITIES)}"

    ltable = Table({"id": [f"a{i}" for i in range(n)], "v": [name() for _ in range(n)]})
    rtable = Table({"id": [f"b{i}" for i in range(n)], "v": [name() for _ in range(n)]})
    return ltable, rtable


def _pairs(result: Table) -> set:
    return set(zip(result["l_id"], result["r_id"]))


def _timed(fn, *args, **kwargs):
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started


def _seed_set_sim_join(
    ltable: Table,
    rtable: Table,
    tokenizer: Tokenizer,
    measure: str,
    threshold: float,
) -> Table:
    """The original string-set filtered join, kept verbatim as baseline.

    This is the pre-kernel implementation of ``set_sim_join``: token sets
    stay Python string sets, the prefix is a keyed sort per record, the
    size filter is checked posting-by-posting, and every candidate pays an
    ``overlap_lower_bound`` call plus a ``set &`` intersection.  It calls
    today's (float-guarded) bound functions so its output stays comparable.
    """
    left_records = [
        (row_key, set(tokenizer.tokenize(str(value))))
        for row_key, value in zip(ltable["id"], ltable["v"])
    ]
    right_records = [
        (row_key, set(tokenizer.tokenize(str(value))))
        for row_key, value in zip(rtable["id"], rtable["v"])
    ]
    order = TokenOrder([tokens for _, tokens in left_records + right_records])

    right_sets = [tokens for _, tokens in right_records]
    index: dict[str, list[tuple[int, int]]] = defaultdict(list)
    for position, tokens in enumerate(right_sets):
        ordered = order.order(tokens)
        for token in ordered[: prefix_length(measure, threshold, len(ordered))]:
            index[token].append((position, len(tokens)))

    results: list[tuple] = []
    for l_id, left_tokens in left_records:
        if not left_tokens:
            continue
        lower, upper = size_bounds(measure, threshold, len(left_tokens))
        upper += BOUND_EPS
        ordered = order.order(left_tokens)
        candidates: set[int] = set()
        for token in ordered[: prefix_length(measure, threshold, len(ordered))]:
            for position, size in index.get(token, ()):
                if lower <= size <= upper:
                    candidates.add(position)
        for position in candidates:
            right_tokens = right_sets[position]
            needed = overlap_lower_bound(
                measure, threshold, len(left_tokens), len(right_tokens)
            )
            if len(left_tokens & right_tokens) < needed:
                continue
            score = similarity(measure, left_tokens, right_tokens)
            if score >= threshold:
                results.append((l_id, right_records[position][0], score))
    return Table.from_rows(
        (
            {"_id": i, "l_id": l_id, "r_id": r_id, "score": score}
            for i, (l_id, r_id, score) in enumerate(results)
        ),
        columns=["_id", "l_id", "r_id", "score"],
    )


def test_simjoin_filtered_join_speed(benchmark):
    ltable, rtable = make_tables(800)
    result = benchmark(
        set_sim_join, ltable, rtable, "id", "id", "v", "v", TOKENIZER, "jaccard", 0.6
    )
    assert result.num_rows >= 0


def test_simjoin_speedup_over_naive(benchmark):
    rows = []

    def run_sweep():
        rows.clear()
        for n in (200, 400, 800):
            ltable, rtable = make_tables(n)
            started = time.perf_counter()
            fast = set_sim_join(
                ltable, rtable, "id", "id", "v", "v", TOKENIZER, "jaccard", 0.6
            )
            fast_seconds = time.perf_counter() - started
            started = time.perf_counter()
            slow = naive_set_sim_join(
                ltable, rtable, "id", "id", "v", "v", TOKENIZER, "jaccard", 0.6
            )
            slow_seconds = time.perf_counter() - started
            assert set(zip(fast["l_id"], fast["r_id"])) == set(
                zip(slow["l_id"], slow["r_id"])
            )
            rows.append(
                {
                    "n per side": n,
                    "filtered join": f"{fast_seconds * 1000:.0f}ms",
                    "naive join": f"{slow_seconds * 1000:.0f}ms",
                    "speedup": f"{slow_seconds / fast_seconds:.1f}x",
                    "output pairs": fast.num_rows,
                    "_speedup": slow_seconds / fast_seconds,
                }
            )
        return rows

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    report(
        "simjoin_filters",
        "Filtered set-similarity join vs naive quadratic join",
        format_table(display)
        + "\n\nExpected shape: identical outputs; the filter-based join's"
          "\nadvantage grows with table size.",
    )
    assert rows[-1]["_speedup"] > 3.0
    assert rows[-1]["_speedup"] >= rows[0]["_speedup"] * 0.8


def test_simjoin_kernel_speedup(benchmark):
    """Integer-kernel join vs the original string-set join, serial + n_jobs."""
    rows = []

    def run_sweep():
        rows.clear()
        for n in (800, 1600, 3200):
            ltable, rtable = make_tables(n)
            seed_result, seed_seconds = _timed(
                _seed_set_sim_join, ltable, rtable, TOKENIZER, "jaccard", 0.6
            )
            kernel_result, kernel_seconds = _timed(
                set_sim_join,
                ltable, rtable, "id", "id", "v", "v", TOKENIZER, "jaccard", 0.6,
                n_jobs=1,
            )
            parallel_result, parallel_seconds = _timed(
                set_sim_join,
                ltable, rtable, "id", "id", "v", "v", TOKENIZER, "jaccard", 0.6,
                n_jobs=N_JOBS,
            )
            assert _pairs(kernel_result) == _pairs(seed_result)
            assert parallel_result == kernel_result  # byte-identical tables
            rows.append(
                {
                    "n per side": n,
                    "string-set join": f"{seed_seconds * 1000:.0f}ms",
                    "int-kernel join": f"{kernel_seconds * 1000:.0f}ms",
                    f"kernel n_jobs={N_JOBS}": f"{parallel_seconds * 1000:.0f}ms",
                    "kernel speedup": f"{seed_seconds / kernel_seconds:.1f}x",
                    "parallel speedup": f"{kernel_seconds / parallel_seconds:.1f}x",
                    "output pairs": kernel_result.num_rows,
                    "_kernel_speedup": seed_seconds / kernel_seconds,
                    "_parallel_speedup": kernel_seconds / parallel_seconds,
                }
            )
        return rows

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    report(
        "simjoin_kernels",
        "Integer token-id kernels vs string-set join (+ multicore fan-out)",
        format_table(display)
        + f"\n\nRun on {os.cpu_count() or 1} CPU(s).  Expected shape: identical"
          "\noutputs; the int-kernel join holds >= 2x over the string-set join"
          "\nat the largest size, and n_jobs adds on top given spare cores.",
    )
    assert rows[-1]["_kernel_speedup"] >= 2.0
    # Real parallel gains need spare cores; without them only require that
    # fork/merge overhead stays bounded once the work amortizes it.
    if (os.cpu_count() or 1) >= 4:
        for row in rows:
            assert row["_parallel_speedup"] > 0.9
        assert rows[-1]["_parallel_speedup"] > 1.2
    else:
        assert rows[-1]["_parallel_speedup"] > 0.7


def test_simjoin_kernels_smoke():
    """Fast CI check: kernel paths agree with the seed join and each other."""
    ltable, rtable = make_tables(200)
    baseline = _seed_set_sim_join(ltable, rtable, TOKENIZER, "jaccard", 0.6)
    serial = None
    for kernel in ("mask", "merge"):
        result = set_sim_join(
            ltable, rtable, "id", "id", "v", "v", TOKENIZER, "jaccard", 0.6,
            kernel=kernel,
        )
        assert _pairs(result) == _pairs(baseline)
        serial = result
    parallel = set_sim_join(
        ltable, rtable, "id", "id", "v", "v", TOKENIZER, "jaccard", 0.6,
        n_jobs=N_JOBS,
    )
    assert parallel == serial
