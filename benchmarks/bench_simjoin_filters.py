"""Micro-benchmark — why py_stringsimjoin exists: filtered vs naive joins.

Table 3's blocking step ships ``py_stringsimjoin`` because naive string
joins over two tables are quadratic.  This bench joins two name tables at
increasing sizes with the filter-based join and the brute-force reference
and reports the speedup (and verifies identical output).  These are also
the proper pytest-benchmark micro-measurements of the suite (multiple
rounds, statistics).
"""

from __future__ import annotations

import random
import time

from _report import format_table, report

from repro.datasets.vocab import CITIES, FIRST_NAMES, LAST_NAMES
from repro.simjoin import naive_set_sim_join, set_sim_join
from repro.table import Table
from repro.text.tokenizers import QgramTokenizer

TOKENIZER = QgramTokenizer(q=3, return_set=True)


def make_tables(n: int, seed: int = 0):
    rng = random.Random(seed)

    def name():
        return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)} {rng.choice(CITIES)}"

    ltable = Table({"id": [f"a{i}" for i in range(n)], "v": [name() for _ in range(n)]})
    rtable = Table({"id": [f"b{i}" for i in range(n)], "v": [name() for _ in range(n)]})
    return ltable, rtable


def test_simjoin_filtered_join_speed(benchmark):
    ltable, rtable = make_tables(800)
    result = benchmark(
        set_sim_join, ltable, rtable, "id", "id", "v", "v", TOKENIZER, "jaccard", 0.6
    )
    assert result.num_rows >= 0


def test_simjoin_speedup_over_naive(benchmark):
    rows = []

    def run_sweep():
        rows.clear()
        for n in (200, 400, 800):
            ltable, rtable = make_tables(n)
            started = time.perf_counter()
            fast = set_sim_join(
                ltable, rtable, "id", "id", "v", "v", TOKENIZER, "jaccard", 0.6
            )
            fast_seconds = time.perf_counter() - started
            started = time.perf_counter()
            slow = naive_set_sim_join(
                ltable, rtable, "id", "id", "v", "v", TOKENIZER, "jaccard", 0.6
            )
            slow_seconds = time.perf_counter() - started
            assert set(zip(fast["l_id"], fast["r_id"])) == set(
                zip(slow["l_id"], slow["r_id"])
            )
            rows.append(
                {
                    "n per side": n,
                    "filtered join": f"{fast_seconds * 1000:.0f}ms",
                    "naive join": f"{slow_seconds * 1000:.0f}ms",
                    "speedup": f"{slow_seconds / fast_seconds:.1f}x",
                    "output pairs": fast.num_rows,
                    "_speedup": slow_seconds / fast_seconds,
                }
            )
        return rows

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    report(
        "simjoin_filters",
        "Filtered set-similarity join vs naive quadratic join",
        format_table(display)
        + "\n\nExpected shape: identical outputs; the filter-based join's"
          "\nadvantage grows with table size.",
    )
    assert rows[-1]["_speedup"] > 3.0
    assert rows[-1]["_speedup"] >= rows[0]["_speedup"] * 0.8
