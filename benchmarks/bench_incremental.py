"""Ablation — coping with new data: incremental vs full re-matching.

Section 6 lists "coping with new data" among deployed-EM challenges.  A
production pipeline receiving B in batches can either re-run the whole
workflow on all data seen so far (quadratic total work) or match each
batch incrementally against the frozen workflow.  This bench feeds the
same stream of batches to both strategies and reports per-batch work and
final accuracy — the shape to reproduce is equal accuracy at a flat
(instead of growing) per-batch cost.
"""

from __future__ import annotations

import time

from _report import format_table, prf, report
from conftest import once

from repro.blocking import OverlapBlocker
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import restaurant
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.labeling import LabelingSession, OracleLabeler
from repro.matchers import RFMatcher
from repro.pipeline import IncrementalMatcher
from repro.postprocess import enforce_one_to_one
from repro.sampling import weighted_sample_candset

N_BATCHES = 4
BATCH = 150


def setup():
    dataset = make_em_dataset(
        restaurant, 700, N_BATCHES * BATCH + 100, match_fraction=0.5,
        dirtiness=DirtinessConfig.light(), seed=61, name="incremental-bench",
    )
    blocker = OverlapBlocker("name", overlap_size=1)
    features = get_features_for_matching(dataset.ltable, dataset.rtable)
    # Train once on the first 100 right rows (the development stage).
    initial = dataset.rtable.take(range(0, 100))
    candset = blocker.block_tables(dataset.ltable, initial, "id", "id")
    sample = weighted_sample_candset(candset, 400, seed=0)
    LabelingSession(OracleLabeler(dataset.gold_pairs)).label_candset(sample)
    fv = extract_feature_vecs(sample, features, label_column="label")
    matcher = RFMatcher(n_estimators=10, random_state=0).fit(fv, features.names())
    batches = [
        dataset.rtable.take(range(100 + i * BATCH, 100 + (i + 1) * BATCH))
        for i in range(N_BATCHES)
    ]
    return dataset, blocker, features, matcher, batches


def full_rematch(dataset, blocker, features, matcher, seen_rows):
    """Re-run blocking + prediction over everything seen so far."""
    candset = blocker.block_tables(dataset.ltable, seen_rows, "id", "id")
    fv = extract_feature_vecs(candset, features)
    proba = matcher.predict_proba(fv)
    scored = [
        (l, r, float(p))
        for l, r, p in zip(fv["ltable_id"], fv["rtable_id"], proba)
        if p >= 0.5
    ]
    return enforce_one_to_one(scored)


def run():
    dataset, blocker, features, matcher, batches = setup()
    incremental = IncrementalMatcher(dataset.ltable, blocker, features, matcher)
    rows = []
    seen = None
    full_matches = set()
    for i, batch in enumerate(batches):
        started = time.perf_counter()
        incremental.process_batch(batch)
        incremental_seconds = time.perf_counter() - started

        seen = batch if seen is None else seen.concat(batch)
        started = time.perf_counter()
        full_matches = full_rematch(dataset, blocker, features, matcher, seen)
        full_seconds = time.perf_counter() - started
        rows.append(
            {
                "batch": i + 1,
                "rows seen": seen.num_rows,
                "incremental s": f"{incremental_seconds:.2f}",
                "full re-match s": f"{full_seconds:.2f}",
                "_inc": incremental_seconds,
                "_full": full_seconds,
            }
        )
    batch_ids = set(seen.column("id"))
    gold = {(a, b) for a, b in dataset.gold_pairs if b in batch_ids}
    inc_p, inc_r, _ = prf(incremental.matches, gold)
    full_p, full_r, _ = prf(full_matches, gold)
    return rows, (inc_p, inc_r), (full_p, full_r)


def test_incremental_vs_full_rematch(benchmark):
    rows, (inc_p, inc_r), (full_p, full_r) = once(benchmark, run)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    report(
        "ablation_incremental",
        "Coping with new data: incremental vs full re-matching",
        format_table(display)
        + f"\n\nfinal accuracy  incremental P={inc_p:.2f} R={inc_r:.2f}"
        + f"\n                full        P={full_p:.2f} R={full_r:.2f}"
        + "\n\nExpected shape: comparable accuracy; incremental per-batch"
          "\ncost stays flat while full re-matching grows with data seen.",
    )
    # Accuracy parity (one-to-one greedy ordering differs slightly).
    assert abs(inc_p - full_p) < 0.1
    assert abs(inc_r - full_r) < 0.1
    # The last batch: incremental clearly cheaper than full re-match.
    assert rows[-1]["_inc"] < rows[-1]["_full"]
    # Full re-match cost grows across batches; incremental roughly flat.
    assert rows[-1]["_full"] > rows[0]["_full"] * 1.5
