"""Ablation — coping with new data: incremental vs full vs live-index matching.

Section 6 lists "coping with new data" among deployed-EM challenges.  A
production pipeline receiving B in batches can re-run the whole workflow
on all data seen so far (quadratic total work), match each batch against
the frozen workflow (IncrementalMatcher: re-blocks A x batch from
scratch), or push each batch through a *live index* whose base segment
covers A and whose delta absorbs the stream — probing new rows one at a
time and never touching the rows already indexed.  This bench feeds the
same stream of batches to all three strategies and reports per-batch
work and final accuracy; the shape to reproduce is equal accuracy at a
flat (instead of growing) per-batch cost, with the machine-readable
per-batch numbers archived as ``results/BENCH_incremental.json``.
"""

from __future__ import annotations

import json
import time

from _report import RESULTS_DIR, format_table, prf, report
from conftest import once

from repro.blocking import OverlapBlocker
from repro.blocking.base import make_candset
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import restaurant
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.labeling import LabelingSession, OracleLabeler
from repro.matchers import RFMatcher
from repro.pipeline import IncrementalMatcher
from repro.postprocess import enforce_one_to_one
from repro.sampling import weighted_sample_candset

N_BATCHES = 4
BATCH = 150


def setup():
    dataset = make_em_dataset(
        restaurant, 700, N_BATCHES * BATCH + 100, match_fraction=0.5,
        dirtiness=DirtinessConfig.light(), seed=61, name="incremental-bench",
    )
    blocker = OverlapBlocker("name", overlap_size=1)
    features = get_features_for_matching(dataset.ltable, dataset.rtable)
    # Train once on the first 100 right rows (the development stage).
    initial = dataset.rtable.take(range(0, 100))
    candset = blocker.block_tables(dataset.ltable, initial, "id", "id")
    sample = weighted_sample_candset(candset, 400, seed=0)
    LabelingSession(OracleLabeler(dataset.gold_pairs)).label_candset(sample)
    fv = extract_feature_vecs(sample, features, label_column="label")
    matcher = RFMatcher(n_estimators=10, random_state=0).fit(fv, features.names())
    batches = [
        dataset.rtable.take(range(100 + i * BATCH, 100 + (i + 1) * BATCH))
        for i in range(N_BATCHES)
    ]
    return dataset, blocker, features, matcher, batches


def full_rematch(dataset, blocker, features, matcher, seen_rows):
    """Re-run blocking + prediction over everything seen so far."""
    candset = blocker.block_tables(dataset.ltable, seen_rows, "id", "id")
    fv = extract_feature_vecs(candset, features)
    proba = matcher.predict_proba(fv)
    scored = [
        (l, r, float(p))
        for l, r, p in zip(fv["ltable_id"], fv["rtable_id"], proba)
        if p >= 0.5
    ]
    return enforce_one_to_one(scored)


class LiveMatcher:
    """The delta strategy: stream rows through a base(A) + delta index.

    The live index's base segment covers A; every arriving right row is
    probed against it (candidates restricted to A-side keys, so rows
    absorbed from earlier batches never pollute the candidate set) and
    then upserted into the delta.  Scoring mirrors IncrementalMatcher:
    same frozen features + matcher, same one-to-one accumulation.
    """

    def __init__(self, dataset, blocker, features, matcher):
        self.dataset = dataset
        self.features = features
        self.matcher = matcher
        self.live = blocker.live_index(dataset.ltable, "id", name="incremental-live")
        self.a_keys = set(dataset.ltable.column("id"))
        self.attr = blocker.r_block_attr
        self.matches: set[tuple] = set()
        self.indexed = 0  # upserts that carried an indexable value
        self._matched_left: set = set()

    def process_batch(self, batch):
        pairs = []
        for r_id, value in zip(batch.column("id"), batch.column(self.attr)):
            found, _ = self.live.search(value)
            pairs.extend((l_id, r_id) for l_id, _ in found if l_id in self.a_keys)
            self.indexed += int(self.live.upsert(r_id, value))
        if not pairs:
            return
        candset = make_candset(pairs, self.dataset.ltable, batch, "id", "id")
        fv = extract_feature_vecs(candset, self.features)
        proba = self.matcher.predict_proba(fv)
        scored = [
            (l, r, float(p))
            for l, r, p in zip(fv["ltable_id"], fv["rtable_id"], proba)
            if p >= 0.5 and l not in self._matched_left
        ]
        accepted = enforce_one_to_one(scored)
        self.matches |= accepted
        self._matched_left.update(l_id for l_id, _ in accepted)


def run():
    dataset, blocker, features, matcher, batches = setup()
    incremental = IncrementalMatcher(dataset.ltable, blocker, features, matcher)
    live = LiveMatcher(dataset, blocker, features, matcher)
    rows = []
    seen = None
    full_matches = set()
    for i, batch in enumerate(batches):
        started = time.perf_counter()
        incremental.process_batch(batch)
        incremental_seconds = time.perf_counter() - started

        started = time.perf_counter()
        live.process_batch(batch)
        live_seconds = time.perf_counter() - started
        if i == 1:
            # Fold the absorbed stream into a fresh base mid-run (untimed:
            # compaction runs in the background in production) so batches
            # 3-4 probe a compacted base, batches 1-2 a growing delta.
            live.live.compact()

        seen = batch if seen is None else seen.concat(batch)
        started = time.perf_counter()
        full_matches = full_rematch(dataset, blocker, features, matcher, seen)
        full_seconds = time.perf_counter() - started
        rows.append(
            {
                "batch": i + 1,
                "rows seen": seen.num_rows,
                "incremental s": f"{incremental_seconds:.2f}",
                "live index s": f"{live_seconds:.2f}",
                "full re-match s": f"{full_seconds:.2f}",
                "_inc": incremental_seconds,
                "_live": live_seconds,
                "_full": full_seconds,
            }
        )
    batch_ids = set(seen.column("id"))
    gold = {(a, b) for a, b in dataset.gold_pairs if b in batch_ids}
    accuracy = {
        "incremental": prf(incremental.matches, gold)[:2],
        "live": prf(live.matches, gold)[:2],
        "full": prf(full_matches, gold)[:2],
    }
    stats = live.live.stats()
    stats["stream_indexed"] = live.indexed
    return rows, accuracy, stats


def persist_json(rows, accuracy, live_stats):
    payload = {
        "experiment": "ablation_incremental",
        "n_batches": N_BATCHES,
        "batch_size": BATCH,
        "batches": [
            {
                "batch": row["batch"],
                "rows_seen": row["rows seen"],
                "incremental_seconds": round(row["_inc"], 4),
                "live_seconds": round(row["_live"], 4),
                "full_seconds": round(row["_full"], 4),
            }
            for row in rows
        ],
        "accuracy": {
            name: {"precision": round(p, 4), "recall": round(r, 4)}
            for name, (p, r) in accuracy.items()
        },
        "live_index": live_stats,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_incremental.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


def test_incremental_vs_full_rematch(benchmark):
    rows, accuracy, live_stats = once(benchmark, run)
    persist_json(rows, accuracy, live_stats)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    (inc_p, inc_r), (live_p, live_r), (full_p, full_r) = (
        accuracy["incremental"], accuracy["live"], accuracy["full"],
    )
    report(
        "ablation_incremental",
        "Coping with new data: incremental vs live index vs full re-matching",
        format_table(display)
        + f"\n\nfinal accuracy  incremental P={inc_p:.2f} R={inc_r:.2f}"
        + f"\n                live index  P={live_p:.2f} R={live_r:.2f}"
        + f"\n                full        P={full_p:.2f} R={full_r:.2f}"
        + f"\n\nlive index after stream: generation={live_stats['generation']}"
        + f" compactions={live_stats['compactions']}"
        + f" rows={live_stats['live_rows']}"
        + "\n\nExpected shape: comparable accuracy; incremental and live-index"
          "\nper-batch cost stays flat while full re-matching grows with data"
          "\nseen.",
    )
    # Accuracy parity (one-to-one greedy ordering differs slightly).
    assert abs(inc_p - full_p) < 0.1
    assert abs(inc_r - full_r) < 0.1
    assert abs(live_p - full_p) < 0.1
    assert abs(live_r - full_r) < 0.1
    # The last batch: both incremental strategies clearly cheaper than full.
    assert rows[-1]["_inc"] < rows[-1]["_full"]
    assert rows[-1]["_live"] < rows[-1]["_full"]
    # Full re-match cost grows across batches; the others roughly flat.
    assert rows[-1]["_full"] > rows[0]["_full"] * 1.5
    # The delta strategy really streamed through the live index.
    assert live_stats["live_rows"] == 700 + live_stats["stream_indexed"]
    assert live_stats["compactions"] == 1
