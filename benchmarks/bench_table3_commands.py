"""Table 3 — Developing tools for the steps of the guide.

The paper's Table 3 inventories, for each step of the PyMatcher how-to
guide, the commands the ecosystem provides (Column E) and the packages
they live in.  This bench regenerates the inventory by introspecting this
repository's command registry — every entry is verified to resolve to a
real importable object, so the table cannot drift from the code.
"""

from __future__ import annotations

from _report import format_table, report
from conftest import once

from repro.pipeline import (
    DEVELOPMENT_GUIDE,
    PRODUCTION_GUIDE,
    command_counts,
    package_inventory,
    resolve_command,
)


def build_inventory():
    for guide in (DEVELOPMENT_GUIDE, PRODUCTION_GUIDE):
        for step in guide:
            for command in step.commands:
                resolve_command(command)  # import check
    return command_counts(), package_inventory()


def test_table3_command_inventory(benchmark):
    counts, packages = once(benchmark, build_inventory)
    step_rows = [
        {
            "Step of the guide": step.name,
            "Commands": len(step.commands),
            "Instruction": step.instruction,
        }
        for step in DEVELOPMENT_GUIDE
    ]
    package_rows = [
        {"Package": package, "Commands": count}
        for package, count in packages.items()
    ]
    report(
        "table3",
        "Tools for the steps of the guide (command inventory)",
        format_table(step_rows)
        + "\n\nPer-package inventory (the ecosystem's packages):\n"
        + format_table(package_rows)
        + f"\n\nTotal commands: {sum(counts.values())} across "
          f"{len(packages)} packages"
        + "\n(paper: 104 commands across 6 packages, 37K LOC; same shape —"
          "\n blocking and metadata are the command-richest steps)",
    )
    assert counts["blocking"] == max(counts.values())
    assert sum(counts.values()) >= 60
    assert len(packages) >= 8


def test_table3_guide_steps_match_paper(benchmark):
    expected = [
        "read_write_data", "down_sample", "data_exploration", "blocking",
        "sampling", "labeling", "feature_vectors", "matching",
        "computing_accuracy", "adding_rules", "managing_metadata",
    ]

    def check():
        names = [step.name for step in DEVELOPMENT_GUIDE]
        assert names == expected
        return names

    once(benchmark, check)
