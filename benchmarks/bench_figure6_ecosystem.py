"""Figure 6 — The envisioned Magellan ecosystem.

The figure's claim is architectural: the same EM capability is available
both as on-premise Python packages (PyMatcher-style, called directly) and
as interoperable (micro)services composed on demand (CloudMatcher 2.0).
This bench demonstrates the claim operationally: the composite ``falcon``
service and a user-assembled workflow of basic services produce the same
matches on the same task, and the on-prem ``run_falcon`` call agrees too.
It also prints the ecosystem inventory: on-prem packages vs services.
"""

from __future__ import annotations

from _report import format_table, report
from conftest import once

from repro.cloud import (
    DEFAULT_REGISTRY,
    CloudMatcher20,
    EMWorkflow,
    WorkflowContext,
    build_falcon_workflow,
)
from repro.datasets import build_cloudmatcher_dataset, cloudmatcher_scenario
from repro.falcon import FalconConfig, run_falcon
from repro.labeling import LabelingSession, OracleLabeler
from repro.pipeline import package_inventory


def _context(dataset):
    return WorkflowContext(
        dataset=dataset,
        session=LabelingSession(OracleLabeler(dataset.gold_pairs), budget=600),
        config=FalconConfig(sample_size=600, blocking_budget=100,
                            matching_budget=200, random_state=0),
        task_name=dataset.name,
    )


def match_pairs_of(matches):
    l_col = next(c for c in matches.columns if c.startswith("ltable_"))
    r_col = next(c for c in matches.columns if c.startswith("rtable_"))
    return set(zip(matches[l_col], matches[r_col]))


def run():
    scenario = cloudmatcher_scenario("restaurants")

    # (a) composite cloud service
    dataset_a = build_cloudmatcher_dataset(scenario)
    context_a = _context(dataset_a)
    DEFAULT_REGISTRY.get("falcon").run(context_a)
    composite_matches = match_pairs_of(context_a.get("matches"))

    # (b) user-assembled workflow of basic services through the 2.0 facade
    dataset_b = build_cloudmatcher_dataset(scenario)
    context_b = _context(dataset_b)
    matcher = CloudMatcher20()
    workflow = build_falcon_workflow("assembled", matcher.registry)
    assert isinstance(workflow, EMWorkflow)
    matcher.submit_custom(workflow, context_b)
    matcher.run(score_against_gold=False)
    assembled_matches = match_pairs_of(context_b.get("matches"))

    # (c) the on-prem Python package path
    dataset_c = build_cloudmatcher_dataset(scenario)
    on_prem = run_falcon(
        dataset_c,
        LabelingSession(OracleLabeler(dataset_c.gold_pairs), budget=600),
        FalconConfig(sample_size=600, blocking_budget=100, matching_budget=200,
                     random_state=0),
    )
    return composite_matches, assembled_matches, on_prem.match_pairs


def test_figure6_ecosystem_interoperability(benchmark):
    composite, assembled, on_prem = once(benchmark, run)
    inventory = package_inventory()
    rows = [
        {"Layer": "on-premise Python packages", "Count": len(inventory),
         "Detail": ", ".join(sorted(inventory))},
        {"Layer": "cloud services (basic)", "Count": 18,
         "Detail": "user-composable via CloudMatcher 2.0"},
        {"Layer": "cloud services (composite)", "Count": 2,
         "Detail": "get_blocking_rules, falcon"},
    ]
    report(
        "figure6",
        "The envisioned Magellan ecosystem: packages + services agree",
        format_table(rows)
        + f"\n\ncomposite-service matches : {len(composite)}"
        + f"\nassembled-workflow matches: {len(assembled)}"
        + f"\non-prem package matches   : {len(on_prem)}"
        + "\n(identical outputs across all three paths: the ecosystem's"
          "\n tools interoperate rather than duplicate)",
    )
    assert composite == assembled == on_prem
