"""Streaming dedupe: one-at-a-time arrival on the live index vs batch.

Section 6's "coping with new data" taken to its limit: records arrive
one at a time and each must be clustered against everything seen so far
before the next arrives.  :class:`StreamingDeduper` probes the live
index (base + delta), merges clusters with a union-find, and upserts the
record — periodic compaction folds the delta into a fresh base without
losing stream state.  The batch baseline tokenises and self-joins the
full corpus after the fact; the contract (enforced here end to end) is
that the streamed clusters equal the batch join's connected components.

``test_streaming_dedupe_smoke`` is the CI-scale variant; its archived
``streaming_dedupe_smoke.metrics.jsonl`` snapshot carries the delta-ops
/ tombstone / compaction counters of the run.
"""

from __future__ import annotations

import random
import time

import networkx as nx
from _report import format_table, report
from conftest import once

from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import restaurant
from repro.index import use_index_store
from repro.pipeline import StreamingDeduper
from repro.simjoin import set_sim_join
from repro.table import Table
from repro.text.tokenizers import WhitespaceTokenizer

THRESHOLD = 0.6


def make_stream(n_entities: int, seed: int = 17) -> list[tuple[str, str]]:
    """A shuffled arrival stream with injected near-duplicates."""
    dataset = make_em_dataset(
        restaurant, n_entities, n_entities, match_fraction=0.5,
        dirtiness=DirtinessConfig.light(), seed=seed, name="stream-dedupe-bench",
    )
    records = [
        (key, value)
        for table in (dataset.ltable, dataset.rtable)
        for key, value in zip(table.column("id"), table.column("name"))
    ]
    random.Random(seed).shuffle(records)
    return records


def batch_clusters(records: list[tuple[str, str]]) -> tuple[set, float]:
    """Connected components of the after-the-fact batch self-join."""
    table = Table(
        {"id": [k for k, _ in records], "value": [v for _, v in records]}
    )
    started = time.perf_counter()
    joined = set_sim_join(
        table, table, "id", "id", "value", "value",
        WhitespaceTokenizer(return_set=True), "jaccard", THRESHOLD,
    )
    graph = nx.Graph()
    graph.add_nodes_from(table.column("id"))
    for l_id, r_id in zip(joined.column("l_id"), joined.column("r_id")):
        if l_id != r_id:
            graph.add_edge(l_id, r_id)
    components = {frozenset(c) for c in nx.connected_components(graph)}
    return components, time.perf_counter() - started


def _run_stream(n_entities: int, chunk: int, compact_every: int | None):
    records = make_stream(n_entities)
    rows: list[dict] = []
    with use_index_store():
        deduper = StreamingDeduper(
            threshold=THRESHOLD, compact_every=compact_every, name="bench-stream"
        )
        for start in range(0, len(records), chunk):
            piece = records[start:start + chunk]
            started = time.perf_counter()
            for key, value in piece:
                deduper.add(key, value)
            seconds = time.perf_counter() - started
            stats = deduper.stats()
            rows.append(
                {
                    "arrived": start + len(piece),
                    "chunk s": f"{seconds:.2f}",
                    "records/s": f"{len(piece) / seconds:.0f}",
                    "delta rows": stats["delta_rows"],
                    "compactions": stats["compactions"],
                    "_seconds": seconds,
                }
            )
        streamed = {frozenset(c) for c in deduper.clusters()}
        final = deduper.stats()
    expected, batch_seconds = batch_clusters(records)
    assert streamed == expected, "streamed clusters differ from batch components"
    return rows, final, batch_seconds


def test_streaming_dedupe(benchmark):
    """Full-scale stream (archived as ``streaming_dedupe``)."""
    rows, final, batch_seconds = once(
        benchmark, lambda: _run_stream(n_entities=2500, chunk=1000, compact_every=1500)
    )
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    report(
        "streaming_dedupe",
        "Streaming dedupe on the live index vs batch self-join",
        format_table(display)
        + f"\n\nbatch self-join + components over the same corpus: {batch_seconds:.2f}s"
        + f"\nfinal stream state: {final['records']} records,"
        + f" {final['clusters']} clusters, {final['compactions']} compactions"
        + "\n\nExpected shape: per-chunk cost roughly flat (prefix-filtered"
          "\nprobes against base + delta); clusters identical to batch.",
    )
    # Per-arrival cost must not blow up as the corpus grows.
    assert rows[-1]["_seconds"] < rows[0]["_seconds"] * 5
    assert final["compactions"] >= 1


def test_streaming_dedupe_smoke():
    """CI-scale version: cluster identity + metrics snapshot, light load."""
    rows, final, batch_seconds = _run_stream(
        n_entities=250, chunk=125, compact_every=200
    )
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    report(
        "streaming_dedupe_smoke",
        "Streaming dedupe smoke (small scale factor)",
        format_table(display)
        + f"\n\nbatch self-join + components: {batch_seconds:.2f}s"
        + f"\nfinal stream state: {final['records']} records,"
        + f" {final['clusters']} clusters, {final['compactions']} compactions",
    )
    from repro.obs import get_registry

    registry = get_registry()
    totals: dict[str, float] = {}
    for (name, _), value in registry.counters().items():
        totals[name] = totals.get(name, 0) + value
    assert totals.get("stream_records_total", 0) >= 500
    assert totals.get("index_delta_ops_total", 0) >= 500
    assert totals.get("index_compactions_total", 0) >= 2
    assert registry.histogram("index_delta_probe_seconds").count > 0
