"""Table 2 — Real-world deployment of CloudMatcher.

Runs the thirteen CloudMatcher tasks through the CloudMatcher 0.1 facade
(the end-to-end Falcon service), with the labeling source the scenario
prescribes: a single task owner, a simulated Mechanical Turk crowd, or —
for "Vehicles" — an expert made unreliable by incomplete records.

The shapes to reproduce from the paper:
* accuracy "often in the 90 percentage" on the clean tasks;
* questions within the 160-1200 band (upper limit 1200);
* low accuracy for Vehicles (uncertain expert), Addresses (dirty data),
  and Vendors (Brazilian generic addresses);
* Vendors (no Brazil) — the same task after data cleaning — recovers.
"""

from __future__ import annotations

from _report import format_table, prf, report
from conftest import once

from repro.cloud import CloudMatcher01, CostModel
from repro.crowd import CrowdLabeler
from repro.datasets import CLOUDMATCHER_SCENARIOS, build_cloudmatcher_dataset
from repro.falcon import FalconConfig
from repro.labeling import LabelingSession, OracleLabeler, UncertainOracleLabeler

MAX_QUESTIONS = 1200  # CloudMatcher's upper limit in the paper


def labeler_for(scenario, dataset):
    if scenario.hard_missing_fields is not None:
        return UncertainOracleLabeler(
            dataset.gold_pairs, dataset.notes["hard_pairs"], seed=scenario.seed
        )
    if scenario.use_crowd:
        return CrowdLabeler(dataset.gold_pairs, replication=3, seed=scenario.seed)
    return OracleLabeler(dataset.gold_pairs, seconds_per_label=6.0)


def run_task(scenario) -> dict:
    dataset = build_cloudmatcher_dataset(scenario)
    labeler = labeler_for(scenario, dataset)
    session = LabelingSession(labeler, budget=min(scenario.label_budget, MAX_QUESTIONS))
    cloudmatcher = CloudMatcher01(
        cost_model=CostModel(), on_cloud=scenario.use_crowd
    )
    config = FalconConfig(
        sample_size=min(1200, 2 * scenario.n_left),
        blocking_budget=scenario.label_budget // 3,
        matching_budget=scenario.label_budget,
        random_state=scenario.seed,
    )
    result = cloudmatcher.match(dataset, session, config)
    context = result.context
    matches = context.get("matches")
    l_col = next(c for c in matches.columns if c.startswith("ltable_"))
    r_col = next(c for c in matches.columns if c.startswith("rtable_"))
    predicted = set(zip(matches[l_col], matches[r_col]))
    precision, recall, _ = prf(predicted, dataset.gold_pairs)
    cost_row = result.cost.as_row()
    return {
        "Task": scenario.key,
        "Org": scenario.organization,
        "|A|": dataset.ltable.num_rows,
        "|B|": dataset.rtable.num_rows,
        "Precision": f"{precision:.2f}",
        "Recall": f"{recall:.2f}",
        "Questions": cost_row["Questions"],
        "Crowd": cost_row["Crowd"],
        "Compute": cost_row["Compute"],
        "User/Crowd": cost_row["User/Crowd"],
        "Machine": cost_row["Machine"],
        "Total": cost_row["Total"],
        "_precision": precision,
        "_recall": recall,
        "_questions": int(cost_row["Questions"]),
    }


def test_table2_cloudmatcher_tasks(benchmark):
    rows = []

    def run_all():
        rows.clear()
        rows.extend(run_task(s) for s in CLOUDMATCHER_SCENARIOS)
        return rows

    once(benchmark, run_all)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    report(
        "table2",
        "Real-world deployment of CloudMatcher (synthetic analogs)",
        format_table(display)
        + "\n\nExpected shape (paper): high accuracy (often 90s) except"
          "\nVehicles / Addresses / Vendors; Vendors (no Brazil) recovers;"
          "\nquestions within 160-1200; crowd tasks cost dollars and hours,"
          "\nsingle-user tasks cost neither.",
    )
    by_key = {row["Task"]: row for row in rows}

    # Question counts stay within CloudMatcher's operating band.
    assert all(row["_questions"] <= MAX_QUESTIONS for row in rows)

    # Clean tasks hit the 90s (allowing two stragglers for small samples).
    dirty = {"vehicles", "addresses", "vendors"}
    clean_rows = [row for row in rows if row["Task"] not in dirty]
    strong = [
        row for row in clean_rows
        if row["_precision"] >= 0.85 and row["_recall"] >= 0.8
    ]
    assert len(strong) >= len(clean_rows) - 2, format_table(display)

    # The dirty-data stories.
    vendors = by_key["vendors"]
    vendors_clean = by_key["vendors_no_brazil"]
    assert vendors_clean["_recall"] > vendors["_recall"]
    assert by_key["vehicles"]["_recall"] < 0.9 or by_key["vehicles"]["_precision"] < 0.9
