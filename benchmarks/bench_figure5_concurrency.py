"""Figure 5 — Self-service EM with CloudMatcher: multi-tenant execution.

CloudMatcher 0.1 executed one EM workflow at a time; 1.0's metamanager
decomposes workflows into engine-kind fragments and interleaves fragments
from concurrent submissions.  This bench submits an increasing number of
scientists' tasks and reports the simulated makespan of serial (0.1-style)
vs interleaved (1.0) execution — the shape to reproduce is an interleaving
speedup that grows with the number of concurrent tasks, because one task's
batch work overlaps another's user wait.
"""

from __future__ import annotations

from _report import format_table, report
from conftest import once

from repro.cloud import CloudMatcher10
from repro.datasets import build_cloudmatcher_dataset, cloudmatcher_scenario
from repro.falcon import FalconConfig
from repro.labeling import LabelingSession, OracleLabeler

TASK_KEYS = ("restaurants", "books", "papers", "products_a", "buildings", "people")


def makespan_for(n_tasks: int, interleave: bool) -> float:
    matcher = CloudMatcher10(interleave=interleave)
    for key in TASK_KEYS[:n_tasks]:
        dataset = build_cloudmatcher_dataset(cloudmatcher_scenario(key))
        matcher.submit(
            dataset,
            LabelingSession(OracleLabeler(dataset.gold_pairs), budget=600),
            FalconConfig(sample_size=600, blocking_budget=100, matching_budget=200,
                         random_state=0),
        )
    makespan, _ = matcher.run(score_against_gold=False)
    return makespan


def run_sweep():
    rows = []
    for n_tasks in (1, 2, 4, 6):
        serial = makespan_for(n_tasks, interleave=False)
        interleaved = makespan_for(n_tasks, interleave=True)
        rows.append(
            {
                "Concurrent tasks": n_tasks,
                "Serial (0.1) makespan": f"{serial / 60:.1f}m",
                "Interleaved (1.0) makespan": f"{interleaved / 60:.1f}m",
                "Speedup": f"{serial / interleaved:.2f}x",
                "_speedup": serial / interleaved,
            }
        )
    return rows


def test_figure5_metamanager_concurrency(benchmark):
    rows = once(benchmark, run_sweep)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    report(
        "figure5",
        "Concurrent EM workflows: serial vs metamanager interleaving",
        format_table(display)
        + "\n\nExpected shape: speedup ~1x for a single task, growing with"
          "\nthe number of concurrent tasks (user-wait of one task overlaps"
          "\nbatch work of another).",
    )
    speedups = [row["_speedup"] for row in rows]
    assert speedups[0] < 1.2  # one task: nothing to interleave
    assert speedups[-1] > 1.5  # six tasks: clear win
    assert speedups[-1] >= speedups[1] - 0.2  # roughly growing
