"""Dict vs array kernel backends: joins and serving, cold and warm.

The columnar backend (`repro.perf.arrays`) exists to amortize per-probe
Python overhead into batched CSR kernels; this bench measures what that
buys and re-asserts the acceptance bar while doing so: on every
configuration the two backends' outputs are compared with ``==`` —
byte-identical rows, float scores, and ordering — before any timing is
reported.

Measured per run, archived as ``results/BENCH_kernels.json``:

* ``set_sim_join`` over a synthetic person corpus, dict vs array, cold
  (fresh ``IndexStore``, artifact builds included) and warm (second
  call, artifacts served from the store);
* ``LiveIndex.search_batch`` serving probes at micro-batch sizes 1, 16,
  and 256 — the shape :class:`repro.serve.MatchServer`'s batching queue
  produces — dict vs array.

``test_kernel_backends_smoke`` is the CI-scale variant; it archives
``kernels_smoke.txt`` plus the ``kernel_batch_*`` metrics snapshot.
"""

from __future__ import annotations

import json
import random
import time

from _report import RESULTS_DIR, format_table, report

from repro.datasets.vocab import CITIES, FIRST_NAMES, LAST_NAMES
from repro.index import use_index_store
from repro.index.delta import LiveIndex
from repro.simjoin import set_sim_join
from repro.table import Table
from repro.text.tokenizers import WhitespaceTokenizer

THRESHOLD = 0.5


def make_name(rng: random.Random, address_range: int = 0) -> str:
    """A synthetic person record; ``address_range > 0`` appends a street
    number drawn from that many distinct values, pushing the token
    universe past ``MASK_UNIVERSE_MAX`` so the dict backend verifies with
    the merge scan instead of its bitmask fast path — the regime real
    large-vocabulary corpora live in."""
    name = f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)} {rng.choice(CITIES)}"
    if address_range:
        name += f" {rng.randrange(address_range)} {rng.choice(['st', 'ave', 'rd', 'blvd'])}"
    return name


def make_table(n: int, prefix: str, seed: int, address_range: int = 0) -> Table:
    rng = random.Random(seed)
    return Table(
        {
            "id": [f"{prefix}{i}" for i in range(n)],
            "v": [make_name(rng, address_range) for _ in range(n)],
        }
    )


def timed_join(ltable: Table, rtable: Table, kernel: str):
    tokenizer = WhitespaceTokenizer(return_set=True)
    started = time.perf_counter()
    result = set_sim_join(
        ltable, rtable, "id", "id", "v", "v", tokenizer,
        "jaccard", THRESHOLD, kernel=kernel,
    )
    seconds = time.perf_counter() - started
    rows = list(
        zip(result.column("l_id"), result.column("r_id"), result.column("score"))
    )
    return rows, seconds


def join_suite(n_left: int, n_right: int, address_range: int = 0) -> list[dict]:
    """Cold and warm join timings per backend, identity asserted."""
    ltable = make_table(n_left, "l", seed=0, address_range=address_range)
    rtable = make_table(n_right, "r", seed=1, address_range=address_range)
    timings: dict[tuple[str, str], float] = {}
    outputs: dict[str, list] = {}
    for kernel in ("dict", "array"):
        with use_index_store():
            outputs[kernel], timings[kernel, "cold"] = timed_join(
                ltable, rtable, kernel
            )
            _, timings[kernel, "warm"] = timed_join(ltable, rtable, kernel)
    assert outputs["array"] == outputs["dict"], "array join output diverged"
    universe = "large-universe" if address_range else "small-universe"
    rows = []
    for phase in ("cold", "warm"):
        dict_s, array_s = timings["dict", phase], timings["array", phase]
        rows.append(
            {
                "workload": (
                    f"set_sim_join {n_left}x{n_right} jaccard {THRESHOLD} ({universe})"
                ),
                "phase": phase,
                "dict_s": round(dict_s, 4),
                "array_s": round(array_s, 4),
                "speedup": round(dict_s / array_s, 2) if array_s else None,
                "pairs": len(outputs["dict"]),
            }
        )
    return rows


def serving_suite(
    n_corpus: int, n_queries: int, address_range: int = 0
) -> list[dict]:
    """LiveIndex.search_batch at serving micro-batch sizes, per backend."""
    corpus = make_table(n_corpus, "b", seed=2, address_range=address_range)
    queries = [
        make_name(random.Random(1000 + i), address_range)
        for i in range(n_queries)
    ]
    rows = []
    results: dict[tuple[str, int], list] = {}
    for kernel in ("dict", "array"):
        with use_index_store():
            live = LiveIndex.from_table(
                corpus, "id", "v", threshold=THRESHOLD, kernel=kernel, name=kernel
            )
            # Build the base artifacts (including the CSR probe index on
            # the array path) outside the timers: this suite measures
            # steady-state serving, not cold start.
            live.search("warmup")
            live.search_batch(["warmup", "warmup"])
            for batch_size in (1, 16, 256):
                answered: list = []
                started = time.perf_counter()
                for at in range(0, len(queries), batch_size):
                    answered.extend(
                        live.search_batch(queries[at : at + batch_size])
                    )
                seconds = time.perf_counter() - started
                results[kernel, batch_size] = answered
                rows.append(
                    {
                        "workload": f"serve {n_queries} queries x {n_corpus} rows",
                        "phase": f"batch={batch_size}",
                        "kernel": kernel,
                        "seconds": round(seconds, 4),
                        "qps": round(len(queries) / seconds) if seconds else None,
                    }
                )
    for batch_size in (1, 16, 256):
        assert results["array", batch_size] == results["dict", batch_size], (
            f"served results diverged at batch={batch_size}"
        )
    merged = []
    for batch_size in (1, 16, 256):
        dict_row = next(
            r for r in rows if r["kernel"] == "dict" and r["phase"] == f"batch={batch_size}"
        )
        array_row = next(
            r for r in rows if r["kernel"] == "array" and r["phase"] == f"batch={batch_size}"
        )
        merged.append(
            {
                "workload": dict_row["workload"],
                "phase": dict_row["phase"],
                "dict_s": dict_row["seconds"],
                "array_s": array_row["seconds"],
                "speedup": (
                    round(dict_row["seconds"] / array_row["seconds"], 2)
                    if array_row["seconds"]
                    else None
                ),
                "pairs": sum(len(m) for m, _ in results["dict", batch_size]),
            }
        )
    return merged


def test_kernel_backends_full():
    join_rows = join_suite(4000, 4000) + join_suite(4000, 4000, address_range=30000)
    serve_rows = serving_suite(4000, 2000, address_range=30000)
    rows = join_rows + serve_rows
    payload = {
        "experiment": "kernel_backends",
        "threshold": THRESHOLD,
        "rows": rows,
        "best_speedup": max(r["speedup"] for r in rows if r["speedup"]),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_kernels.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report(
        "BENCH_kernels",
        "Columnar (array) vs scalar (dict) kernel backends, byte-identical outputs",
        format_table(
            rows, ["workload", "phase", "dict_s", "array_s", "speedup", "pairs"]
        ),
    )
    # The acceptance bar: >= 2x on at least one non-smoke configuration.
    assert payload["best_speedup"] >= 2.0, payload


def test_kernel_backends_smoke():
    rows = join_suite(300, 300) + serving_suite(300, 120)
    report(
        "kernels_smoke",
        "Kernel backend smoke (small scale factor): dict vs array equivalence",
        format_table(
            rows, ["workload", "phase", "dict_s", "array_s", "speedup", "pairs"]
        ),
    )
    # Identity is asserted inside the suites; at smoke scale we only
    # require that the array path ran, not that it won.
    assert rows
