"""Ablation — ML vs rules vs ML+rules (Sections 4.2 and 6).

The paper's lesson: "ML helps significantly improve recall while retaining
high precision, compared to rule-based EM solutions", and "the most
accurate EM workflows are likely to involve a combination of ML and
rules".  This bench pits three matchers against each other on three
deployment scenarios:

* rules-only (a hand-crafted boolean rule matcher),
* ML-only (a random forest),
* ML+rules (the forest with a hand-crafted negative veto rule).
"""

from __future__ import annotations

from _report import format_table, prf, report
from conftest import once

from repro.blocking import OverlapBlocker
from repro.catalog import get_catalog
from repro.datasets import build_pymatcher_dataset, pymatcher_scenario
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.labeling import LabelingSession, OracleLabeler
from repro.matchers import BooleanRuleMatcher, MatchRule, MLRuleMatcher, RFMatcher
from repro.sampling import weighted_sample_candset

SCENARIOS = {
    "recruit": ("name", 2, "name_jaccard_ws", "street_jaccard_ws"),
    "marshfield": ("name", 1, "name_jaccard_ws", "city_exact"),
    "land_use_uw": ("ranch_name", 2, "ranch_name_jaccard_ws", "owner_jaccard_ws"),
}


def run_scenario(key):
    block_attr, overlap, main_feature, aux_feature = SCENARIOS[key]
    dataset = build_pymatcher_dataset(pymatcher_scenario(key))
    candset = OverlapBlocker(block_attr, overlap_size=overlap).block_tables(
        dataset.ltable, dataset.rtable, "id", "id"
    )
    features = get_features_for_matching(dataset.ltable, dataset.rtable)
    meta = get_catalog().get_candset_metadata(candset)
    pairs = list(zip(candset[meta.fk_ltable], candset[meta.fk_rtable]))
    fv_all = extract_feature_vecs(candset, features)

    def predicted_pairs(column):
        return {p for p, flag in zip(pairs, fv_all[column]) if flag == 1}

    # rules-only: match when both similarities are high.  Conjunctions are
    # essential — attribute vocabularies repeat, so a single-attribute
    # rule fires on hordes of distinct entities sharing a name.
    rules_only = BooleanRuleMatcher()
    rules_only.add_rule(
        [f"{main_feature} >= 0.8", f"{aux_feature} >= 0.6"], features
    )
    rules_only.add_rule(
        [f"{main_feature} >= 0.6", f"{aux_feature} >= 0.9"], features
    )
    rules_only.predict(fv_all, output_column="rules")

    # ML-only: label a sample, train a forest.
    sample = weighted_sample_candset(candset, 600, seed=0)
    LabelingSession(OracleLabeler(dataset.gold_pairs)).label_candset(sample)
    fv_sample = extract_feature_vecs(sample, features, label_column="label")
    forest = RFMatcher(n_estimators=15, random_state=0).fit(fv_sample, features.names())
    forest.predict(fv_all, output_column="ml")

    # ML+rules: the forest plus a precise hand-crafted positive rule and
    # a protective negative rule (both conjunctive, for the same reason).
    combined = MLRuleMatcher(
        forest,
        positive_rules=[
            MatchRule.parse(
                [f"{main_feature} >= 0.95", f"{aux_feature} >= 0.9"], features
            )
        ],
        negative_rules=[
            MatchRule.parse(
                [f"{main_feature} <= 0.15", f"{aux_feature} <= 0.15"], features
            )
        ],
    )
    combined.predict(fv_all, output_column="combined")

    row = {"Scenario": key}
    scores = {}
    for label, column in (("rules", "rules"), ("ml", "ml"), ("ml+rules", "combined")):
        precision, recall, f1 = prf(predicted_pairs(column), dataset.gold_pairs)
        row[f"{label} P/R/F1"] = f"{precision:.2f}/{recall:.2f}/{f1:.2f}"
        scores[label] = (precision, recall, f1)
    row["_scores"] = scores
    return row


def test_ablation_ml_vs_rules(benchmark):
    rows = once(benchmark, lambda: [run_scenario(key) for key in SCENARIOS])
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    report(
        "ablation_ml_vs_rules",
        "ML vs rules vs ML+rules across deployments",
        format_table(display)
        + "\n\nExpected shape (paper): ML clearly beats hand-crafted rules"
          "\non recall at comparable precision; ML+rules is at least as good"
          "\nas ML alone.",
    )
    for row in rows:
        scores = row["_scores"]
        assert scores["ml"][1] > scores["rules"][1], row  # recall win
        assert scores["ml"][2] > scores["rules"][2], row  # F1 win
        assert scores["ml+rules"][2] >= scores["ml"][2] - 0.02, row
