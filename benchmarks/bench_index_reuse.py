"""Build-once/probe-many: what the IndexStore saves on repeated runs.

Every join used to rebuild its tokenization, ``TokenUniverse`` encoding,
and prefix index from scratch — including Falcon re-running its fallback
blocker and Smurf sweeping thresholds over the same pair of tables.
This bench measures the amortization the :class:`repro.index.IndexStore`
buys:

* a *warm* ``set_sim_join`` / ``OverlapBlocker`` run (store already
  holds the artifacts) against a *cold* one, asserting byte-identical
  output serial and parallel;
* a warm-from-disk run (fresh process-equivalent: fresh store pointed at
  a persisted cache directory);
* feature extraction with global (l_value, r_value) dedup against naive
  per-pair evaluation;
* a repeated Falcon run, asserting ``index_reuses_total`` grows.

The archived ``index_reuse.metrics.jsonl`` snapshot carries the
``index_builds_total`` / ``index_reuses_total`` counters CI inspects.
"""

from __future__ import annotations

import random
import tempfile
import time

from _report import format_table, report
from conftest import once

from repro.blocking import OverlapBlocker
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import restaurant
from repro.datasets.vocab import CITIES, FIRST_NAMES, LAST_NAMES
from repro.falcon import FalconConfig, run_falcon
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.index import IndexStore, use_index_store
from repro.labeling import LabelingSession, OracleLabeler
from repro.obs import get_registry
from repro.simjoin import set_sim_join
from repro.table import Table
from repro.text.tokenizers import QgramTokenizer

N_JOBS = 4


def make_tables(n: int, seed: int = 0) -> tuple[Table, Table]:
    rng = random.Random(seed)

    def name() -> str:
        return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)} {rng.choice(CITIES)}"

    ltable = Table({"id": [f"a{i}" for i in range(n)], "v": [name() for _ in range(n)]})
    rtable = Table({"id": [f"b{i}" for i in range(n)], "v": [name() for _ in range(n)]})
    return ltable, rtable


def _columns(table: Table) -> list[list]:
    return [table.column(name) for name in table.columns]


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _counter_total(name: str) -> float:
    return sum(
        value
        for (metric, _), value in get_registry().counters().items()
        if metric == name
    )


def _join(ltable: Table, rtable: Table, n_jobs: int = 1) -> Table:
    # A fresh tokenizer per call: its tokenize_cached memo must not leak
    # warmth into a run meant to be cold.  A tight threshold keeps the
    # probe phase short, so the timing contrast isolates what the store
    # amortizes: tokenize + universe encode + prefix-index build.
    return set_sim_join(
        ltable, rtable, "id", "id", "v", "v",
        QgramTokenizer(q=3, return_set=True), "jaccard", 0.9, n_jobs=n_jobs,
    )


def _run_reuse_suite(n: int, falcon_size: int, falcon_budget: int) -> list[dict]:
    rows: list[dict] = []
    ltable, rtable = make_tables(n)

    # -- join: cold vs warm (memory tier), serial and parallel ---------
    with use_index_store():
        cold, cold_seconds = _timed(lambda: _join(ltable, rtable))
        warm, warm_seconds = _timed(lambda: _join(ltable, rtable))
        warm_parallel, warm_parallel_seconds = _timed(
            lambda: _join(ltable, rtable, n_jobs=N_JOBS)
        )
    assert _columns(warm) == _columns(cold), "warm join output differs from cold"
    assert _columns(warm_parallel) == _columns(cold), "parallel warm output differs"
    rows.append(
        {
            "workload": f"set_sim_join jaccard 0.9 ({n}x{n})",
            "cold": f"{cold_seconds * 1000:.0f}ms",
            "warm": f"{warm_seconds * 1000:.0f}ms",
            "speedup": f"{cold_seconds / warm_seconds:.1f}x",
            "output": cold.num_rows,
        }
    )
    rows.append(
        {
            "workload": f"  warm + n_jobs={N_JOBS}",
            "cold": "-",
            "warm": f"{warm_parallel_seconds * 1000:.0f}ms",
            "speedup": f"{cold_seconds / warm_parallel_seconds:.1f}x",
            "output": warm_parallel.num_rows,
        }
    )

    # -- join: warm from disk (fresh store = fresh process) ------------
    with tempfile.TemporaryDirectory() as cache_dir:
        with use_index_store(IndexStore(cache_dir=cache_dir)):
            _, build_seconds = _timed(lambda: _join(ltable, rtable))
        with use_index_store(IndexStore(cache_dir=cache_dir)):
            disk_warm, disk_seconds = _timed(lambda: _join(ltable, rtable))
    assert _columns(disk_warm) == _columns(cold), "disk-warm join output differs"
    rows.append(
        {
            "workload": "  warm from disk cache",
            "cold": f"{build_seconds * 1000:.0f}ms",
            "warm": f"{disk_seconds * 1000:.0f}ms",
            "speedup": f"{build_seconds / disk_seconds:.1f}x",
            "output": disk_warm.num_rows,
        }
    )

    # -- blocker: cold vs warm -----------------------------------------
    blocker = OverlapBlocker("v", overlap_size=2)
    with use_index_store():
        cold_block, cold_block_seconds = _timed(
            lambda: blocker.block_tables(ltable, rtable, "id", "id")
        )
        warm_block, warm_block_seconds = _timed(
            lambda: blocker.block_tables(ltable, rtable, "id", "id")
        )
    assert _columns(warm_block) == _columns(cold_block)
    rows.append(
        {
            "workload": f"OverlapBlocker size=2 ({n}x{n})",
            "cold": f"{cold_block_seconds * 1000:.0f}ms",
            "warm": f"{warm_block_seconds * 1000:.0f}ms",
            "speedup": f"{cold_block_seconds / warm_block_seconds:.1f}x",
            "output": cold_block.num_rows,
        }
    )

    # -- feature extraction: global dedup vs naive per-pair ------------
    # Real candidate sets repeat attribute-value pairs heavily (city,
    # state, brand columns), so this workload draws values from a small
    # pool: duplicate pairs land in every shard and the global dedup
    # evaluates each distinct pair once.
    pool = [f"{f} {c}" for f in FIRST_NAMES[:8] for c in CITIES[:4]]
    n_dup = min(n, 600)  # quadratic-ish candset on a 32-value pool; cap it
    rng = random.Random(1)
    dup_l = Table(
        {"id": [f"a{i}" for i in range(n_dup)], "v": [rng.choice(pool) for _ in range(n_dup)]}
    )
    dup_r = Table(
        {"id": [f"b{i}" for i in range(n_dup)], "v": [rng.choice(pool) for _ in range(n_dup)]}
    )
    candset = OverlapBlocker("v", overlap_size=2).block_tables(dup_l, dup_r, "id", "id")
    features = get_features_for_matching(dup_l, dup_r, "id", "id")
    hits_before = _counter_total("feature_cache_hits_total")
    misses_before = _counter_total("feature_cache_misses_total")
    fv, dedup_seconds = _timed(lambda: extract_feature_vecs(candset, features))
    hits = _counter_total("feature_cache_hits_total") - hits_before
    misses = _counter_total("feature_cache_misses_total") - misses_before

    def naive_extract() -> dict[str, list]:
        l_index = dup_l.index_by("id")
        r_index = dup_r.index_by("id")
        columns: dict[str, list] = {f.name: [] for f in features}
        for l_id, r_id in zip(candset.column("ltable_id"), candset.column("rtable_id")):
            l_row, r_row = l_index[l_id], r_index[r_id]
            for feature in features:
                columns[feature.name].append(
                    feature(l_row[feature.l_attr], r_row[feature.r_attr])
                )
        return columns

    naive_columns, naive_seconds = _timed(naive_extract)
    for feature in features:
        assert fv.column(feature.name) == naive_columns[feature.name], (
            f"dedup extraction differs from naive for {feature.name}"
        )
    rows.append(
        {
            "workload": f"extract_feature_vecs ({candset.num_rows} pairs, "
            f"{misses:.0f} distinct evals, {hits:.0f} dedup hits)",
            "cold": f"{naive_seconds * 1000:.0f}ms",
            "warm": f"{dedup_seconds * 1000:.0f}ms",
            "speedup": f"{naive_seconds / dedup_seconds:.1f}x",
            "output": fv.num_rows,
        }
    )

    # -- Falcon, run twice: second run reuses the first run's indexes --
    dataset = make_em_dataset(
        restaurant, falcon_size, falcon_size, match_fraction=0.5,
        dirtiness=DirtinessConfig.light(), seed=7, name="index-reuse",
    )
    config = FalconConfig(
        sample_size=min(4 * falcon_size, 700),
        blocking_budget=falcon_budget // 3,
        matching_budget=falcon_budget,
        random_state=0,
    )

    def falcon_once() -> float:
        session = LabelingSession(OracleLabeler(dataset.gold_pairs), budget=falcon_budget)
        result = run_falcon(dataset, session, config)
        return result.machine_seconds

    with use_index_store():
        first_seconds = falcon_once()
        reuses_before = _counter_total("index_reuses_total")
        second_seconds = falcon_once()
        falcon_reuses = _counter_total("index_reuses_total") - reuses_before
    assert falcon_reuses > 0, "repeated Falcon run reused no index artifacts"
    rows.append(
        {
            "workload": f"run_falcon twice ({falcon_size}x{falcon_size}, "
            f"{falcon_reuses:.0f} artifact reuses in run 2)",
            "cold": f"{first_seconds:.2f}s",
            "warm": f"{second_seconds:.2f}s",
            "speedup": f"{first_seconds / second_seconds:.1f}x",
            "output": "-",
        }
    )
    return rows


def test_index_reuse(benchmark):
    """Full-scale warm-vs-cold comparison (archived as ``index_reuse``)."""
    rows = once(benchmark, lambda: _run_reuse_suite(n=2500, falcon_size=200, falcon_budget=240))
    report(
        "index_reuse",
        "IndexStore: build-once/probe-many vs per-call index rebuilds",
        format_table(rows, ["workload", "cold", "warm", "speedup", "output"]),
    )
    # The acceptance bar: a warm store makes repeated joins >= 2x faster.
    warm_speedup = float(rows[0]["speedup"].rstrip("x"))
    assert warm_speedup >= 2.0, f"warm join only {warm_speedup}x faster than cold"


def test_index_reuse_smoke():
    """CI-scale version: correctness of reuse, no timing assertions."""
    rows = _run_reuse_suite(n=300, falcon_size=100, falcon_budget=120)
    report(
        "index_reuse_smoke",
        "IndexStore reuse smoke (small scale factor)",
        format_table(rows, ["workload", "cold", "warm", "speedup", "output"]),
    )
    assert _counter_total("index_reuses_total") > 0
    assert _counter_total("index_builds_total") > 0
