"""Figure 1 — The running example: matching two person tables.

Reproduces the figure literally (tables A and B, matches (a1,b1) and
(a3,b2)) and benchmarks the attribute-equivalence blocker + matcher
pipeline that solves it.
"""

from __future__ import annotations

from _report import format_table, report
from conftest import once

from repro.blocking import AttrEquivalenceBlocker
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.matchers import ThresholdMatcher
from repro.table import Table


def build_tables():
    table_a = Table(
        {
            "id": ["a1", "a2", "a3"],
            "name": ["Dave Smith", "Joe Wilson", "Dan Smith"],
            "city": ["Madison", "San Jose", "Middleton"],
            "state": ["WI", "CA", "WI"],
        }
    )
    table_b = Table(
        {
            "id": ["b1", "b2"],
            "name": ["David D. Smith", "Daniel W. Smith"],
            "city": ["Madison", "Middleton"],
            "state": ["WI", "WI"],
        }
    )
    return table_a, table_b


def solve():
    table_a, table_b = build_tables()
    candset = AttrEquivalenceBlocker("state").block_tables(table_a, table_b, "id", "id")
    features = get_features_for_matching(table_a, table_b)
    fv = extract_feature_vecs(candset, features)
    ThresholdMatcher("city_exact", 1.0).predict(fv)
    return {
        (l, r)
        for l, r, p in zip(fv["ltable_id"], fv["rtable_id"], fv["predicted"])
        if p == 1
    }


def test_figure1_example(benchmark):
    matches = once(benchmark, solve)
    table_a, table_b = build_tables()
    body = (
        "Table A:\n" + format_table(table_a.to_rows()) + "\n\n"
        "Table B:\n" + format_table(table_b.to_rows()) + "\n\n"
        f"Matches found: {sorted(matches)}\n"
        "(paper's Figure 1: matches are (a1, b1) and (a3, b2))"
    )
    report("figure1", "Matching two tables (the running example)", body)
    assert matches == {("a1", "b1"), ("a3", "b2")}
