"""Appendix D — system characteristics.

The paper's Appendix D reports CloudMatcher's code-base shape (47K LOC,
Python + Java + frontend, 7 developers, 18+2 services).  This bench
regenerates the analogous inventory for this repository by measuring the
live source tree: lines of code per package, module counts, test and
benchmark volume — so the numbers in the documentation can never drift
from the code.
"""

from __future__ import annotations

from pathlib import Path

from _report import format_table, report
from conftest import once

from repro.cloud import DEFAULT_REGISTRY

ROOT = Path(__file__).parent.parent


def count_lines(directory: Path) -> tuple[int, int]:
    """(python files, total lines) under a directory."""
    files = sorted(directory.rglob("*.py")) if directory.is_dir() else [directory]
    total = 0
    for path in files:
        total += len(path.read_text(encoding="utf-8").splitlines())
    return len(files), total


def measure():
    src = ROOT / "src" / "repro"
    rows = []
    for entry in sorted(src.iterdir()):
        if entry.name.startswith("__") and entry.is_dir():
            continue
        if entry.is_dir():
            files, lines = count_lines(entry)
            rows.append({"package": f"repro.{entry.name}", "modules": files, "lines": lines})
        elif entry.suffix == ".py" and not entry.name.startswith("__"):
            files, lines = count_lines(entry)
            rows.append({"package": f"repro.{entry.stem}", "modules": 1, "lines": lines})
    totals = {
        "src": count_lines(src),
        "tests": count_lines(ROOT / "tests"),
        "benchmarks": count_lines(ROOT / "benchmarks"),
        "examples": count_lines(ROOT / "examples"),
    }
    services = DEFAULT_REGISTRY.services()
    return rows, totals, services


def test_appendix_d_system_characteristics(benchmark):
    rows, totals, services = once(benchmark, measure)
    summary = [
        {"tree": name, "modules": files, "lines": lines}
        for name, (files, lines) in totals.items()
    ]
    basic = sum(1 for s in services if s.core and not s.composite)
    composite = sum(1 for s in services if s.core and s.composite)
    report(
        "appendix_d",
        "System characteristics (the live code-base inventory)",
        format_table(rows)
        + "\n\nTree totals:\n" + format_table(summary)
        + f"\n\nServices: {basic} basic + {composite} composite "
          f"(+{len(services) - basic - composite} utility)"
        + "\n(paper's Appendix D: CloudMatcher at 47K LOC across Python/"
          "\nJava/frontend with 18 basic + 2 composite services; PyMatcher"
          "\nat 37K LOC across 6 packages)",
    )
    src_files, src_lines = totals["src"]
    assert src_lines > 8_000  # a real system, not a demo
    assert sum(1 for row in rows if row["modules"] > 1) >= 15  # many packages
    assert basic == 18 and composite == 2
