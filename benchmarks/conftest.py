"""Benchmark-suite fixtures and reporting hooks."""

import sys
import time
from pathlib import Path

import pytest

# Make the sibling _report helper importable as a plain module.
sys.path.insert(0, str(Path(__file__).parent))

from _report import RESULTS_DIR  # noqa: E402
from repro.catalog import reset_catalog  # noqa: E402

_SESSION_START = time.time()


def pytest_terminal_summary(terminalreporter):
    """Print every reproduction table produced during this run.

    pytest's fd-level capture swallows in-test prints of passing tests;
    the terminal summary runs uncaptured, so the paper tables land in the
    console (and in any `tee`'d log) as well as in benchmarks/results/.
    """
    if not RESULTS_DIR.exists():
        return
    fresh = sorted(
        path
        for path in RESULTS_DIR.glob("*.txt")
        if path.stat().st_mtime >= _SESSION_START - 1
    )
    if not fresh:
        return
    terminalreporter.section("reproduced tables & figures")
    for path in fresh:
        terminalreporter.write(path.read_text(encoding="utf-8"))


@pytest.fixture(autouse=True)
def _clean_catalog():
    reset_catalog()
    yield
    reset_catalog()


def once(benchmark, fn):
    """Run an end-to-end workload exactly once under the benchmark timer.

    The paper-table benches are minutes-long workflows; pytest-benchmark's
    default calibration would re-run them dozens of times.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
