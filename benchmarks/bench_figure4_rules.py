"""Figure 4 — A decision tree and the blocking rules extracted from it.

The figure's example: a tree over book features predicting that two books
match only if their ISBNs match and their page counts match; the branches
to "No" leaves become the blocking rules

    Rule 1: ISBN match < 1 -> drop
    Rule 2: ISBN match >= 1 AND #pages match < 1 -> drop

This bench trains a tree on labeled book pairs restricted to the
``isbn_exact`` and ``pages_exact`` features and prints both the tree and
the extracted rules, asserting the figure's structure (the ISBN feature
at the root, both no-branches extracted).
"""

from __future__ import annotations

import numpy as np
from _report import report
from conftest import once

from repro.blocking import OverlapBlocker
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import book
from repro.falcon import extract_rules_from_tree
from repro.features import (
    FeatureTable,
    extract_feature_vecs,
    feature_matrix,
    get_features_for_blocking,
    make_exact_feature,
)
from repro.ml import DecisionTreeClassifier


def run():
    dataset = make_em_dataset(
        book, 400, 400, match_fraction=0.5,
        # books: ISBNs rarely corrupted, pages numeric
        dirtiness=DirtinessConfig(typo_rate=0.1, abbrev_rate=0.0,
                                  token_drop_rate=0.0, reorder_rate=0.0,
                                  case_rate=0.0, missing_rate=0.0,
                                  numeric_jitter_rate=0.15),
        seed=4, name="figure4-books",
    )
    candset = OverlapBlocker("title", overlap_size=1).block_tables(
        dataset.ltable, dataset.rtable, "id", "id"
    )
    features = FeatureTable(
        [
            make_exact_feature("isbn_exact", "isbn", "isbn"),
            make_exact_feature("pages_exact", "pages", "pages"),
        ]
    )
    fv = extract_feature_vecs(candset, features)
    labels = [
        1 if pair in dataset.gold_pairs else 0
        for pair in zip(candset["ltable_id"], candset["rtable_id"])
    ]
    X = feature_matrix(fv, features.names(), impute=False)
    X = np.where(np.isnan(X), 0.0, X)
    tree = DecisionTreeClassifier(max_depth=2).fit(
        X, np.array(labels), feature_names=features.names()
    )
    rules = extract_rules_from_tree(tree, features)
    return tree, rules


def test_figure4_tree_and_rules(benchmark):
    tree, rules = once(benchmark, run)
    rules_text = "\n".join(f"   Rule {i + 1}: {rule}" for i, rule in enumerate(rules))
    report(
        "figure4",
        "A decision tree and its extracted blocking rules",
        "Learned tree:\n" + tree.export_text()
        + "\n\nExtracted candidate blocking rules (root-to-No-leaf paths):\n"
        + rules_text
        + "\n\n(paper's Figure 4: 'ISBN match < 1 -> drop' and"
          "\n 'ISBN match >= 1 AND #pages match < 1 -> drop')",
    )
    # The figure's structure: ISBN at the root, one or two no-rules, the
    # first being the pure low-ISBN-similarity rule.
    assert tree.root_.feature is not None
    assert tree.feature_names_[tree.root_.feature] == "isbn_exact"
    assert 1 <= len(rules) <= 2
    first = rules[0]
    assert any(
        p.feature.name == "isbn_exact" and p.op in ("<=", "<") for p in first.predicates
    )
