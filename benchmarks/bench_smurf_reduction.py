"""Section 5.3 — Smurf: labeling-effort reduction vs Falcon.

Smurf "removes the need to label to learn blocking rules ... this
drastically reduces the labeling effort by 43-76%, yet achieving the same
accuracy."  This bench runs Falcon and Smurf on the same string-matching
tasks with identical active-learning settings per stage and reports the
per-task reduction and both accuracies.
"""

from __future__ import annotations

import random

from _report import format_table, prf, report
from conftest import once

from repro.datasets import DirtinessConfig, make_string_dataset
from repro.datasets.vocab import CITIES, FIRST_NAMES, LAST_NAMES, PRODUCT_BRANDS, PRODUCT_NOUNS
from repro.falcon import FalconConfig, run_falcon
from repro.labeling import LabelingSession, OracleLabeler
from repro.smurf import SmurfConfig, run_smurf


def _person_strings(rng):
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)} {rng.choice(CITIES)}"


def _product_strings(rng):
    return (
        f"{rng.choice(PRODUCT_BRANDS)} {rng.choice(PRODUCT_NOUNS)} "
        f"{rng.randrange(100, 999)}"
    )


TASKS = (
    ("person names", _person_strings, 1),
    ("person names (hard)", _person_strings, 2),
    ("product titles", _product_strings, 3),
)


def run_task(name, factory, seed):
    rng = random.Random(seed)
    strings = sorted({factory(rng) for _ in range(800)})
    dataset = make_string_dataset(
        strings, match_fraction=0.6, dirtiness=DirtinessConfig.moderate(),
        seed=seed, name=name,
    )
    # Both systems get the same matching-stage budget; Falcon additionally
    # pays for its blocking stage over a large pair sample, as in the real
    # deployments.  Smurf's saving is exactly that blocking-stage labeling.
    falcon = run_falcon(
        dataset,
        LabelingSession(OracleLabeler(dataset.gold_pairs)),
        FalconConfig(sample_size=3000, blocking_budget=350, matching_budget=245,
                     batch_size=15, max_iterations=25, random_state=0),
    )
    smurf = run_smurf(
        dataset,
        LabelingSession(OracleLabeler(dataset.gold_pairs)),
        config=SmurfConfig(candidate_budget_factor=3.0, matching_budget=245,
                           batch_size=15, max_iterations=15, random_state=0),
    )
    falcon_p, falcon_r, falcon_f = prf(falcon.match_pairs, dataset.gold_pairs)
    smurf_p, smurf_r, smurf_f = prf(smurf.match_pairs, dataset.gold_pairs)
    reduction = 1.0 - smurf.questions / falcon.questions
    return {
        "Task": name,
        "Falcon labels": falcon.questions,
        "Smurf labels": smurf.questions,
        "Reduction": f"{reduction:.0%}",
        "Falcon P/R": f"{falcon_p:.2f}/{falcon_r:.2f}",
        "Smurf P/R": f"{smurf_p:.2f}/{smurf_r:.2f}",
        "_reduction": reduction,
        "_falcon_f1": falcon_f,
        "_smurf_f1": smurf_f,
    }


def test_smurf_labeling_reduction(benchmark):
    rows = once(benchmark, lambda: [run_task(*task) for task in TASKS])
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    report(
        "smurf",
        "Smurf vs Falcon: labeling effort at equal accuracy (section 5.3)",
        format_table(display)
        + "\n\n(paper: Smurf reduces labeling effort by 43-76% at the same"
          "\n accuracy; the reduction is the skipped blocking-stage labels)",
    )
    for row in rows:
        assert row["_reduction"] > 0.3, row
        assert row["_smurf_f1"] >= row["_falcon_f1"] - 0.1, row
    mean_reduction = sum(row["_reduction"] for row in rows) / len(rows)
    assert 0.35 <= mean_reduction <= 0.8
