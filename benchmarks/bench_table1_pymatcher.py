"""Table 1 — Real-world deployment of PyMatcher.

For each of the eight deployment scenarios, run the PyMatcher guide
workflow (block -> weighted sample -> label -> features -> random forest)
and the incumbent "production solution" (a single-similarity threshold
matcher), and report both accuracies.  The paper's claim to reproduce:
the PyMatcher workflow beats the production baseline — most visibly in
recall — across a broad range of organizations, with a small labeling
budget and a tiny team (here: one script).
"""

from __future__ import annotations

from _report import format_table, prf, report
from conftest import once

from repro.blocking import OverlapBlocker, candset_union
from repro.catalog import get_catalog
from repro.datasets import PYMATCHER_SCENARIOS, build_pymatcher_dataset
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.labeling import LabelingSession, OracleLabeler
from repro.matchers import RFMatcher, ThresholdMatcher
from repro.sampling import weighted_sample_candset

#: blocking attribute(s) and baseline feature per scenario domain
_DOMAIN_SETTINGS = {
    "product": (["title"], [2], "title_jaccard_ws"),
    "restaurant": (["name", "street"], [2, 2], "name_jaccard_ws"),
    "person": (["name"], [1], "name_jaccard_ws"),
    # Citation titles draw 5 words from a small topical vocabulary, so
    # 2-token overlap keeps most of A x B; require 3 shared words.
    "citation": (["title"], [3], "title_jaccard_ws"),
    "ranch": (["ranch_name", "owner"], [2, 2], "ranch_name_jaccard_ws"),
    "address": (["street", "zip"], [2, 1], "street_jaccard_ws"),
}

LABEL_BUDGET = 600
BASELINE_THRESHOLD = 0.75


def run_scenario(scenario) -> dict:
    dataset = build_pymatcher_dataset(scenario)
    attrs, overlaps, baseline_feature = _DOMAIN_SETTINGS[scenario.domain]

    candset = None
    for attr, overlap in zip(attrs, overlaps):
        blocked = OverlapBlocker(attr, overlap_size=overlap).block_tables(
            dataset.ltable, dataset.rtable, "id", "id"
        )
        candset = blocked if candset is None else candset_union(candset, blocked)

    features = get_features_for_matching(dataset.ltable, dataset.rtable)
    meta = get_catalog().get_candset_metadata(candset)
    pairs = list(zip(candset[meta.fk_ltable], candset[meta.fk_rtable]))

    fv_all = extract_feature_vecs(candset, features)
    baseline = ThresholdMatcher(baseline_feature, BASELINE_THRESHOLD)
    baseline.predict(fv_all, output_column="baseline")
    baseline_pairs = {
        pair for pair, flag in zip(pairs, fv_all["baseline"]) if flag == 1
    }

    sample = weighted_sample_candset(candset, LABEL_BUDGET, seed=scenario.seed)
    session = LabelingSession(OracleLabeler(dataset.gold_pairs))
    session.label_candset(sample)
    fv = extract_feature_vecs(sample, features, label_column="label")
    matcher = RFMatcher(n_estimators=15, random_state=0).fit(fv, features.names())
    matcher.predict(fv_all, output_column="predicted")
    pymatcher_pairs = {
        pair for pair, flag in zip(pairs, fv_all["predicted"]) if flag == 1
    }

    base_p, base_r, base_f = prf(baseline_pairs, dataset.gold_pairs)
    py_p, py_r, py_f = prf(pymatcher_pairs, dataset.gold_pairs)
    return {
        "Application": scenario.organization,
        "Purpose": scenario.purpose,
        "Prod P/R": f"{base_p:.2f}/{base_r:.2f}",
        "PyMatcher P/R": f"{py_p:.2f}/{py_r:.2f}",
        "Better": "yes" if py_f > base_f else "no",
        "In production": "yes" if scenario.in_production else "considered",
        "Team": scenario.team,
        "_py_f1": py_f,
        "_base_f1": base_f,
    }


def test_table1_pymatcher_deployments(benchmark):
    rows = []

    def run_all():
        rows.clear()
        rows.extend(run_scenario(s) for s in PYMATCHER_SCENARIOS)
        return rows

    once(benchmark, run_all)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    report(
        "table1",
        "Real-world deployment of PyMatcher (synthetic analogs)",
        format_table(display)
        + "\n\nExpected shape (paper): PyMatcher workflows beat the production"
          "\nbaseline, and were pushed into production in 6 of 8 applications.",
    )
    # The reproduction claim: the guide workflow beats the incumbent
    # threshold matcher in at least 7 of the 8 deployments.
    wins = sum(1 for row in rows if row["_py_f1"] > row["_base_f1"])
    assert wins >= 7, f"PyMatcher beat the baseline in only {wins}/8 scenarios"
