"""Sustained-qps benchmark for the online match-serving layer.

The millions-of-users story the ROADMAP asks for, measured: a resident
:class:`repro.serve.MatchServer` loads one corpus index at startup and
answers point queries from concurrent client threads through the
micro-batching queue.  Reported per workload: sustained qps and exact
p50/p99 request latency (queue wait + service), against the offline
``set_sim_join`` run over the same queries as the batch baseline.

Correctness bar, asserted on every run: the served candidates of every
query are byte-identical (ids, float scores, order) to the batch join's
rows for that query.

``test_serving_smoke`` is the CI-scale variant; its archived
``serving_smoke.metrics.jsonl`` snapshot carries the
``serve_requests_total`` / ``serve_request_seconds`` /
``serve_batch_size`` series CI inspects.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor

from _report import format_table, report
from conftest import once

from repro.datasets.vocab import CITIES, FIRST_NAMES, LAST_NAMES
from repro.index import use_index_store
from repro.serve import MatchServer, ServeConfig
from repro.simjoin import set_sim_join
from repro.table import Table
from repro.text.tokenizers import WhitespaceTokenizer

THRESHOLD = 0.5
TENANTS = ("alice", "bob", "carol", "dan")


def make_name(rng: random.Random) -> str:
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)} {rng.choice(CITIES)}"


def make_corpus(n: int, seed: int = 0) -> Table:
    rng = random.Random(seed)
    return Table(
        {"id": [f"b{i}" for i in range(n)], "v": [make_name(rng) for _ in range(n)]}
    )


def make_queries(n: int, seed: int = 1) -> list[str]:
    rng = random.Random(seed)
    return [make_name(rng) for _ in range(n)]


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, round(q * (len(ordered) - 1)))]


def batch_reference(
    corpus: Table, queries: list[str], tokenizer
) -> tuple[list[list[tuple]], float]:
    """Per-query ranked candidates from the batch join, plus its seconds."""
    query_table = Table(
        {"id": [f"q{i}" for i in range(len(queries))], "v": list(queries)}
    )
    started = time.perf_counter()
    joined = set_sim_join(
        query_table, corpus, "id", "id", "v", "v", tokenizer, "jaccard", THRESHOLD
    )
    seconds = time.perf_counter() - started
    by_query: dict[str, list[tuple]] = {}
    for l_id, r_id, score in zip(
        joined.column("l_id"), joined.column("r_id"), joined.column("score")
    ):
        by_query.setdefault(l_id, []).append((r_id, score))
    expected = [
        sorted(by_query.get(f"q{i}", []), key=lambda pair: -pair[1])
        for i in range(len(queries))
    ]
    return expected, seconds


def drive(server: MatchServer, queries: list[str], client_threads: int):
    """Fire every query from a client pool; returns (results, latencies, wall)."""

    def ask(item):
        i, query = item
        return server.match(query, tenant=TENANTS[i % len(TENANTS)], timeout=60)

    started = time.perf_counter()
    if client_threads == 1:
        results = [ask(item) for item in enumerate(queries)]
    else:
        with ThreadPoolExecutor(max_workers=client_threads) as pool:
            results = list(pool.map(ask, enumerate(queries)))
    wall = time.perf_counter() - started
    return results, [r.seconds for r in results], wall


def _run_serving_suite(
    n_corpus: int, n_queries: int, client_threads: int = 16
) -> list[dict]:
    corpus = make_corpus(n_corpus)
    queries = make_queries(n_queries)
    tokenizer = WhitespaceTokenizer(return_set=True)
    rows: list[dict] = []

    with use_index_store():
        expected, batch_seconds = batch_reference(corpus, queries, tokenizer)
        rows.append(
            {
                "workload": f"batch set_sim_join ({n_queries} queries x {n_corpus} rows)",
                "clients": "-",
                "qps": f"{n_queries / batch_seconds:.0f}",
                "p50": "-",
                "p99": "-",
                "batch": n_queries,
            }
        )

        config = ServeConfig(
            threshold=THRESHOLD, top_k=None, workers=2, max_batch=64,
            batch_linger_s=0.0005, max_queue_depth=1024,
            default_tenant_quota=None,
        )
        server = MatchServer(corpus, "id", "v", tokenizer=tokenizer, config=config)
        warm_started = time.perf_counter()
        server.start()
        warmup_seconds = time.perf_counter() - warm_started
        try:
            for label, threads in (("serial client", 1), (f"{client_threads} clients", client_threads)):
                results, latencies, wall = drive(server, queries, threads)
                served = [r.candidates for r in results]
                assert served == expected, "served candidates differ from batch join"
                rows.append(
                    {
                        "workload": f"MatchServer {label}",
                        "clients": threads,
                        "qps": f"{len(queries) / wall:.0f}",
                        "p50": f"{percentile(latencies, 0.5) * 1000:.2f}ms",
                        "p99": f"{percentile(latencies, 0.99) * 1000:.2f}ms",
                        "batch": f"{max(r.batch_size for r in results)} max",
                    }
                )
        finally:
            server.stop()
        rows.append(
            {
                "workload": "  server warmup (index load)",
                "clients": "-",
                "qps": "-",
                "p50": f"{warmup_seconds * 1000:.0f}ms",
                "p99": "-",
                "batch": "-",
            }
        )
    return rows


def test_serving(benchmark):
    """Full-scale sustained-qps run (archived as ``serving``)."""
    rows = once(benchmark, lambda: _run_serving_suite(n_corpus=20000, n_queries=2000))
    report(
        "serving",
        "Online match serving: resident MatchServer vs batch join",
        format_table(rows, ["workload", "clients", "qps", "p50", "p99", "batch"]),
    )


def test_serving_smoke():
    """CI-scale version: byte-identity + metrics snapshot, light load."""
    rows = _run_serving_suite(n_corpus=1500, n_queries=300, client_threads=8)
    report(
        "serving_smoke",
        "Online match serving smoke (small scale factor)",
        format_table(rows, ["workload", "clients", "qps", "p50", "p99", "batch"]),
    )
    from repro.obs import get_registry

    registry = get_registry()
    served = sum(
        value
        for (name, _), value in registry.counters().items()
        if name == "serve_requests_total"
    )
    # Serial pass + concurrent pass over the query set.
    assert served >= 2 * 300
    assert registry.histogram("serve_request_seconds").count >= 2 * 300
