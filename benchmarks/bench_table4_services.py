"""Table 4 — List of services in CloudMatcher.

Regenerates the service inventory from the live registry: 18 basic + 2
composite services (Appendix D's counts), each tagged with the execution
engine that runs it.  Also verifies that the composite Falcon service is
genuinely a composition — running it produces the same artifacts as the
basic services run individually.
"""

from __future__ import annotations

from _report import format_table, report
from conftest import once

from repro.cloud import DEFAULT_REGISTRY, ServiceKind


def inventory():
    return [
        {
            "Service": service.name,
            "Kind": service.kind.value,
            "Type": "composite" if service.composite else "basic",
            "Description": service.description,
        }
        for service in DEFAULT_REGISTRY.services()
        if service.core
    ]


def test_table4_service_inventory(benchmark):
    rows = once(benchmark, inventory)
    basic = [row for row in rows if row["Type"] == "basic"]
    composite = [row for row in rows if row["Type"] == "composite"]
    report(
        "table4",
        "List of services in CloudMatcher",
        format_table(rows)
        + f"\n\n{len(basic)} basic + {len(composite)} composite services"
          "\n(paper, Appendix D: 18 basic services and 2 composite services)",
    )
    assert len(basic) == 18
    assert len(composite) == 2
    assert {row["Kind"] for row in rows} == {
        ServiceKind.BATCH.value,
        ServiceKind.CROWD.value,
        ServiceKind.USER_INTERACTION.value,
    }
