"""Figure 3 — The Falcon workflow, step by step.

Runs the six-step Falcon workflow on a products task and reports what
each numbered step of the figure produced: the sampled pairs (1), the
actively-learned forest F (2), the extracted + retained blocking rules
(3), the executed candidate set C (4), the second forest G (5), and the
predicted matches (6).
"""

from __future__ import annotations

from _report import format_table, prf, report
from conftest import once

from repro.datasets import build_cloudmatcher_dataset, cloudmatcher_scenario
from repro.falcon import FalconConfig, run_falcon
from repro.labeling import LabelingSession, OracleLabeler


def run():
    dataset = build_cloudmatcher_dataset(cloudmatcher_scenario("products_a"))
    session = LabelingSession(OracleLabeler(dataset.gold_pairs), budget=1200)
    config = FalconConfig(
        sample_size=1200, blocking_budget=200, matching_budget=300, random_state=0
    )
    result = run_falcon(dataset, session, config)
    return dataset, config, result


def test_figure3_falcon_workflow(benchmark):
    dataset, config, result = once(benchmark, run)
    precision, recall, _ = prf(result.match_pairs, dataset.gold_pairs)
    cross_product = dataset.ltable.num_rows * dataset.rtable.num_rows
    steps = [
        {"Step": "1 sample pairs S", "Outcome": f"{config.sample_size} pairs from A x B"},
        {
            "Step": "2 active-learn forest F",
            "Outcome": f"{config.n_trees} trees, "
                       f"{result.blocking_stage.questions} questions, "
                       f"{result.blocking_stage.iterations} rounds",
        },
        {
            "Step": "3 extract + evaluate rules",
            "Outcome": f"{len(result.rule_evaluations)} candidates -> "
                       f"{len(result.rules)} precise executable rules retained",
        },
        {
            "Step": "4 execute rules -> C",
            "Outcome": f"|C| = {result.candset.num_rows} "
                       f"({result.candset.num_rows / cross_product:.2%} of A x B)",
        },
        {
            "Step": "5 active-learn forest G",
            "Outcome": f"{result.matching_stage.questions} questions, "
                       f"{result.matching_stage.iterations} rounds",
        },
        {
            "Step": "6 apply G (alpha-voting)",
            "Outcome": f"{result.matches.num_rows} matches, "
                       f"P={precision:.2f} R={recall:.2f}",
        },
    ]
    rules_text = "\n".join(f"   {rule}" for rule in result.rules)
    report(
        "figure3",
        "The Falcon self-service workflow",
        format_table(steps)
        + f"\n\nRetained blocking rules:\n{rules_text}"
        + f"\n\nTotal lay-user questions: {result.questions}"
          "\n(paper's Table 2 band: 160-1200 questions; accuracy often in the 90s)",
    )
    assert 0 < result.questions <= 1200
    assert precision > 0.85 and recall > 0.75
    assert result.candset.num_rows < cross_product / 20  # blocking bites
