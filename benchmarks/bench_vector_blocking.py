"""Vector (ANN) blocking vs token overlap on the dirty scenarios.

The ROADMAP flags token-overlap blocking as the weakest link where
surface tokens disagree — exactly the regime of the heavy-dirtiness
CloudMatcher scenarios (Vehicles' typo-ridden VIN fragments, Addresses'
corrupted street strings).  This bench sweeps both families over those
scenarios and records the recall-vs-candidate-set-size frontier:

* :class:`OverlapBlocker` at word level and character-q-gram level, at
  several overlap sizes;
* :class:`VectorBlocker` (hashed char-n-gram TF-IDF embeddings + banded
  LSH) across threshold / ``top_k`` budget / band configurations.

The headline numbers land in ``results/BENCH_vector_blocking.json`` —
the repo's tracked evidence that on at least one dirty scenario the
vector blocker reaches recall >= an overlap config at an equal-or-
smaller candidate set ("dominations"), and that the ANN index
round-trips through the IndexStore disk tier with identical probe
results (cold build == warm reload).

``test_vector_blocking_smoke`` is the CI-scale variant.
"""

from __future__ import annotations

import json
import time

from _report import RESULTS_DIR, format_table, report

from repro.blocking import OverlapBlocker, VectorBlocker, blocking_recall, candset_pairs
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import restaurant
from repro.datasets.scenarios import build_cloudmatcher_dataset, cloudmatcher_scenario
from repro.index import IndexStore, set_index_store, use_index_store

#: (scenario key, blocking attribute) — both heavy-dirtiness tasks.
SCENARIOS = (
    ("vehicles", "vin_fragment"),
    ("addresses", "street"),
)


def overlap_configs(attr: str) -> list[tuple[str, OverlapBlocker]]:
    return [
        ("overlap word>=1", OverlapBlocker(attr, overlap_size=1)),
        ("overlap word>=2", OverlapBlocker(attr, overlap_size=2)),
        ("overlap 3gram>=2", OverlapBlocker(attr, word_level=False, q=3, overlap_size=2)),
        ("overlap 3gram>=4", OverlapBlocker(attr, word_level=False, q=3, overlap_size=4)),
    ]


def vector_configs(attr: str) -> list[tuple[str, VectorBlocker]]:
    return [
        ("vector t=.30 k=10", VectorBlocker(attr, threshold=0.3, top_k=10)),
        ("vector t=.20 k=20 b=32", VectorBlocker(attr, threshold=0.2, top_k=20, n_bands=32)),
        ("vector t=.10 k=50 b=32", VectorBlocker(attr, threshold=0.1, top_k=50, n_bands=32)),
        (
            "vector t=.10 k=100 b=48x5",
            VectorBlocker(attr, threshold=0.1, top_k=100, n_bands=48, band_bits=5),
        ),
    ]


def measure(dataset, attr: str) -> list[dict]:
    """One frontier: every config's candidate count, recall, seconds."""
    rows = []
    for family, configs in (
        ("overlap", overlap_configs(attr)),
        ("vector", vector_configs(attr)),
    ):
        for name, blocker in configs:
            started = time.perf_counter()
            candset = blocker.block_tables(
                dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key
            )
            rows.append(
                {
                    "family": family,
                    "config": name,
                    "candidates": candset.num_rows,
                    "recall": round(blocking_recall(candset, dataset.gold_pairs), 4),
                    "seconds": round(time.perf_counter() - started, 3),
                }
            )
    return rows


def dominations(rows: list[dict]) -> list[dict]:
    """Vector configs with recall >= an overlap config at <= its size."""
    found = []
    for vector_row in rows:
        if vector_row["family"] != "vector":
            continue
        for overlap_row in rows:
            if overlap_row["family"] != "overlap":
                continue
            if (
                vector_row["recall"] >= overlap_row["recall"]
                and vector_row["candidates"] <= overlap_row["candidates"]
                and overlap_row["recall"] > 0.0
            ):
                found.append(
                    {
                        "vector": vector_row["config"],
                        "overlap": overlap_row["config"],
                        "recall": vector_row["recall"],
                        "overlap_recall": overlap_row["recall"],
                        "candidates": vector_row["candidates"],
                        "overlap_candidates": overlap_row["candidates"],
                    }
                )
    return found


def ann_roundtrip_identical(tmp_dir: str) -> bool:
    """Cold ANN build vs disk-tier warm reload: identical probe results.

    Builds the vector artifact chain against a persistent cache, then
    re-probes through a *fresh* store (memory tier empty, disk tier
    warm) and compares the candidate sets pair-for-pair, plus every
    probe's raw candidate positions on the reloaded AnnIndex object.
    """
    dataset = make_em_dataset(
        restaurant, 120, 120, match_fraction=0.5,
        dirtiness=DirtinessConfig.heavy(), seed=7, name="ann-roundtrip",
    )
    blocker = VectorBlocker("name", threshold=0.2, top_k=10, n_bands=32)

    def run(store: IndexStore):
        previous = set_index_store(store)
        try:
            candset = blocker.block_tables(
                dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key
            )
            left = store.hashed_column(
                dataset.ltable, dataset.l_key, "name", blocker._vectorizer
            )
            right = store.hashed_column(
                dataset.rtable, dataset.r_key, "name", blocker._vectorizer
            )
            pair = store.vector_pair(left, right, idf=True)
            ann = store.ann_index(pair, side="right", n_bands=32, band_bits=6)
            probes = [ann.probe(vector) for _, vector in pair.left]
            return candset_pairs(candset), probes
        finally:
            set_index_store(previous)

    cold_pairs, cold_probes = run(IndexStore(cache_dir=tmp_dir))
    warm_store = IndexStore(cache_dir=tmp_dir)
    warm_pairs, warm_probes = run(warm_store)
    reused = any(
        row["kind"] == "ann" for row in warm_store.disk_artifacts()
    )
    return reused and cold_pairs == warm_pairs and cold_probes == warm_probes


def _run(scenarios, tmp_dir: str) -> dict:
    results: dict = {"scenarios": {}, "dominations": {}}
    for key, attr in scenarios:
        dataset = build_cloudmatcher_dataset(cloudmatcher_scenario(key))
        with use_index_store():
            rows = measure(dataset, attr)
        results["scenarios"][key] = {
            "attr": attr,
            "left_rows": dataset.ltable.num_rows,
            "right_rows": dataset.rtable.num_rows,
            "gold_pairs": len(dataset.gold_pairs),
            "frontier": rows,
        }
        results["dominations"][key] = dominations(rows)
    results["ann_roundtrip_identical"] = ann_roundtrip_identical(tmp_dir)
    return results


def _render(results: dict) -> str:
    sections = []
    for key, block in results["scenarios"].items():
        table = format_table(
            block["frontier"],
            ["family", "config", "candidates", "recall", "seconds"],
        )
        wins = results["dominations"][key]
        lines = [
            f"[{key}] {block['left_rows']}x{block['right_rows']} on "
            f"{block['attr']!r}, {block['gold_pairs']} gold pairs",
            table,
        ]
        if wins:
            best = max(wins, key=lambda w: (w["recall"], -w["candidates"]))
            lines.append(
                f"vector dominates overlap: {best['vector']} reaches recall "
                f"{best['recall']:.3f} with {best['candidates']} candidates vs "
                f"{best['overlap']} at {best['overlap_recall']:.3f} with "
                f"{best['overlap_candidates']}"
            )
        else:
            lines.append("no vector config dominates an overlap config here")
        sections.append("\n".join(lines))
    sections.append(
        "ANN disk-tier round trip probe-identical: "
        f"{results['ann_roundtrip_identical']}"
    )
    return "\n\n".join(sections)


def test_vector_blocking(benchmark, tmp_path):
    """Full frontier over both dirty scenarios; archives the JSON."""
    from conftest import once

    results = once(benchmark, lambda: _run(SCENARIOS, str(tmp_path)))
    report(
        "vector_blocking",
        "ANN/embedding blocking vs token overlap (dirty scenarios)",
        _render(results),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_vector_blocking.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    # Acceptance: on at least one dirty scenario some vector config
    # reaches recall >= an overlap config at an equal-or-smaller
    # candidate set, and the ANN index reloads probe-identically.
    assert any(results["dominations"].values())
    assert results["ann_roundtrip_identical"]


def test_vector_blocking_smoke(tmp_path):
    """CI-scale variant: one tiny heavy-dirtiness corpus, same contracts."""
    dataset = make_em_dataset(
        restaurant, 150, 150, match_fraction=0.5,
        dirtiness=DirtinessConfig.heavy(), seed=13, name="vector-smoke",
    )
    configs = [
        ("overlap", "overlap word>=1", OverlapBlocker("name")),
        (
            "vector",
            "vector t=.20 k=20 b=32",
            VectorBlocker("name", threshold=0.2, top_k=20, n_bands=32),
        ),
    ]
    rows = []
    with use_index_store():
        for family, name, blocker in configs:
            candset = blocker.block_tables(
                dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key
            )
            rows.append(
                {
                    "family": family,
                    "config": name,
                    "candidates": candset.num_rows,
                    "recall": round(
                        blocking_recall(candset, dataset.gold_pairs), 4
                    ),
                }
            )
    roundtrip = ann_roundtrip_identical(str(tmp_path))
    report(
        "vector_blocking_smoke",
        "Vector blocking smoke (small scale factor)",
        format_table(rows, ["family", "config", "candidates", "recall"])
        + f"\n\nANN disk-tier round trip probe-identical: {roundtrip}",
    )
    assert roundtrip
    vector_row = rows[-1]
    assert vector_row["recall"] > 0.0
    from repro.obs import get_registry

    registry = get_registry()
    totals: dict[str, float] = {}
    for (name, _), value in registry.counters().items():
        totals[name] = totals.get(name, 0) + value
    assert totals.get("index_ann_probes_total", 0) > 0
    assert totals.get("index_ann_candidates_total", 0) > 0
    builds = sum(
        value
        for (name, labels), value in registry.counters().items()
        if name == "index_builds_total" and dict(labels).get("kind") == "ann"
    )
    assert builds >= 1
