"""Runtime micro-benchmark — operator-DAG execution: chain vs branchy DAG.

The ``repro.runtime`` core now carries all three workflow stacks, so its
scheduling overhead and its parallel executor matter.  This bench runs a
CPU-bound workload twice shaped two ways — as a pure chain (no available
parallelism) and as a branchy fan-out DAG — on the serial and the
fork-parallel executor.  The shape to reproduce: parallel execution of
the chain is no faster (nothing independent to run), while the branchy
DAG speeds up with workers; scheduling overhead per node stays tiny.
"""

from __future__ import annotations

import time

from _report import format_table, report
from conftest import once

from repro.runtime import OperatorGraph, ParallelExecutor, SerialExecutor, run_graph

WORK_ITERATIONS = 600_000  # ~30-50ms per node: dwarfs fork/scheduling overhead
BRANCHES = 8


def _burn(iterations: int) -> float:
    total = 0.0
    for i in range(iterations):
        total += (i % 97) * 0.5
    return total


def chain_dag() -> OperatorGraph:
    """8 dependent nodes: no two can ever run concurrently."""
    graph = OperatorGraph("chain")
    previous = ()
    for i in range(BRANCHES):
        def node(store, i=i):
            return {f"c{i}": _burn(WORK_ITERATIONS)}

        graph.add(f"n{i}", node, deps=previous, outputs=(f"c{i}",), isolated=True)
        previous = (f"n{i}",)
    return graph


def branchy_dag() -> OperatorGraph:
    """source -> 8 independent branches -> sink: embarrassingly parallel middle."""
    graph = OperatorGraph("branchy")
    graph.add("source", lambda s: {"seed": 1}, outputs=("seed",))
    for i in range(BRANCHES):
        def node(store, i=i):
            return {f"b{i}": _burn(WORK_ITERATIONS)}

        graph.add(f"branch{i}", node, deps=("source",), outputs=(f"b{i}",), isolated=True)
    graph.add(
        "sink",
        lambda s: {"total": sum(s[f"b{i}"] for i in range(BRANCHES))},
        deps=tuple(f"branch{i}" for i in range(BRANCHES)),
        outputs=("total",),
    )
    return graph


def time_run(make_graph, executor) -> float:
    started = time.perf_counter()
    result = run_graph(make_graph(), executor=executor)
    assert result.ok
    return time.perf_counter() - started


def run_matrix():
    rows = []
    for shape, make_graph in (("chain", chain_dag), ("branchy", branchy_dag)):
        serial = time_run(make_graph, SerialExecutor())
        parallel = time_run(make_graph, ParallelExecutor(n_jobs=4))
        rows.append(
            {
                "DAG shape": shape,
                "Nodes": len(make_graph()),
                "Serial": f"{serial * 1000:.0f}ms",
                "Parallel (4 jobs)": f"{parallel * 1000:.0f}ms",
                "Speedup": f"{serial / parallel:.2f}x",
                "_shape": shape,
                "_speedup": serial / parallel,
            }
        )
    return rows


def test_runtime_dag_executors_smoke(benchmark):
    rows = once(benchmark, run_matrix)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    report(
        "runtime_dag",
        "Operator-DAG runtime: chain vs branchy DAG, serial vs parallel",
        format_table(display)
        + "\n\nExpected shape: the chain gains nothing from the parallel"
          "\nexecutor (every node depends on the previous one), while the"
          "\nbranchy DAG's independent branches speed up with workers.",
    )
    by_shape = {row["_shape"]: row["_speedup"] for row in rows}
    # A chain has no exploitable parallelism; allow fork/scheduling noise.
    assert by_shape["chain"] < 1.5
    # The branchy DAG must actually exploit its independent branches,
    # unless the machine cannot fork (then speedup ~1 is expected).
    import os
    if hasattr(os, "fork") and (os.cpu_count() or 1) >= 2:
        assert by_shape["branchy"] > 1.2
