"""Runtime micro-benchmark — operator-DAG execution: chain vs branchy DAG.

The ``repro.runtime`` core now carries all three workflow stacks, so its
scheduling overhead and its parallel executor matter.  This bench runs a
CPU-bound workload twice shaped two ways — as a pure chain (no available
parallelism) and as a branchy fan-out DAG — on the serial and the
fork-parallel executor.  The shape to reproduce: parallel execution of
the chain is no faster (nothing independent to run), while the branchy
DAG speeds up with workers; scheduling overhead per node stays tiny.

The second half benchmarks the :mod:`repro.plan` cost-based optimizer on
the multi-blocker pipeline: a cold run (no statistics — the planner is a
no-op) executes the user's filter order, a stats-warmed run reorders the
commuting filter chain most-selective-first.  The full-scale variant
asserts the >= 1.3x warm win and archives the numbers as
``benchmarks/results/BENCH_plan.json`` — the repo's tracked perf
trajectory for the planner.
"""

from __future__ import annotations

import json
import pickle
import random
import time

from _report import RESULTS_DIR, format_table, report
from conftest import once

from repro.blocking import AttrEquivalenceBlocker, BlackBoxBlocker, OverlapBlocker
from repro.plan import StatsStore, execute_plan, multi_blocker_graph, plan_graph
from repro.runtime import OperatorGraph, ParallelExecutor, SerialExecutor, run_graph
from repro.table import Table

WORK_ITERATIONS = 600_000  # ~30-50ms per node: dwarfs fork/scheduling overhead
BRANCHES = 8


def _burn(iterations: int) -> float:
    total = 0.0
    for i in range(iterations):
        total += (i % 97) * 0.5
    return total


def chain_dag() -> OperatorGraph:
    """8 dependent nodes: no two can ever run concurrently."""
    graph = OperatorGraph("chain")
    previous = ()
    for i in range(BRANCHES):
        def node(store, i=i):
            return {f"c{i}": _burn(WORK_ITERATIONS)}

        graph.add(f"n{i}", node, deps=previous, outputs=(f"c{i}",), isolated=True)
        previous = (f"n{i}",)
    return graph


def branchy_dag() -> OperatorGraph:
    """source -> 8 independent branches -> sink: embarrassingly parallel middle."""
    graph = OperatorGraph("branchy")
    graph.add("source", lambda s: {"seed": 1}, outputs=("seed",))
    for i in range(BRANCHES):
        def node(store, i=i):
            return {f"b{i}": _burn(WORK_ITERATIONS)}

        graph.add(f"branch{i}", node, deps=("source",), outputs=(f"b{i}",), isolated=True)
    graph.add(
        "sink",
        lambda s: {"total": sum(s[f"b{i}"] for i in range(BRANCHES))},
        deps=tuple(f"branch{i}" for i in range(BRANCHES)),
        outputs=("total",),
    )
    return graph


def time_run(make_graph, executor) -> float:
    started = time.perf_counter()
    result = run_graph(make_graph(), executor=executor)
    assert result.ok
    return time.perf_counter() - started


def run_matrix():
    rows = []
    for shape, make_graph in (("chain", chain_dag), ("branchy", branchy_dag)):
        serial = time_run(make_graph, SerialExecutor())
        parallel = time_run(make_graph, ParallelExecutor(n_jobs=4))
        rows.append(
            {
                "DAG shape": shape,
                "Nodes": len(make_graph()),
                "Serial": f"{serial * 1000:.0f}ms",
                "Parallel (4 jobs)": f"{parallel * 1000:.0f}ms",
                "Speedup": f"{serial / parallel:.2f}x",
                "_shape": shape,
                "_speedup": serial / parallel,
            }
        )
    return rows


def test_runtime_dag_executors_smoke(benchmark):
    rows = once(benchmark, run_matrix)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    report(
        "runtime_dag",
        "Operator-DAG runtime: chain vs branchy DAG, serial vs parallel",
        format_table(display)
        + "\n\nExpected shape: the chain gains nothing from the parallel"
          "\nexecutor (every node depends on the previous one), while the"
          "\nbranchy DAG's independent branches speed up with workers.",
    )
    by_shape = {row["_shape"]: row["_speedup"] for row in rows}
    # A chain has no exploitable parallelism; allow fork/scheduling noise.
    assert by_shape["chain"] < 1.5
    # The branchy DAG must actually exploit its independent branches,
    # unless the machine cannot fork (then speedup ~1 is expected).
    import os
    if hasattr(os, "fork") and (os.cpu_count() or 1) >= 2:
        assert by_shape["branchy"] > 1.2


# ----------------------------------------------------------------------
# Cost-based planner: cold (no stats, no-op plan) vs stats-warmed run of
# the multi-blocker pipeline, where reordering the commuting filter chain
# most-selective-first shrinks the expensive filter's input.

PAIR_BURN_ITERATIONS = 120  # per-pair cost of the "expensive" filter
CATEGORIES = 8  # the cheap equality filter keeps ~1/8 of pairs


def _plan_tables(n_rows: int, seed: int = 7) -> tuple[Table, Table]:
    rng = random.Random(seed)
    words = ["red", "blue", "green", "ultra", "mega", "widget", "gadget", "gizmo"]

    def make(offset: int) -> Table:
        return Table(
            {
                "id": list(range(offset, offset + n_rows)),
                "name": [
                    " ".join(rng.choice(words) for _ in range(3))
                    for _ in range(n_rows)
                ],
                "cat": [f"c{rng.randrange(CATEGORIES)}" for _ in range(n_rows)],
            }
        )

    return make(0), make(n_rows)


def _expensive_permissive_filter() -> BlackBoxBlocker:
    """A per-pair predicate that burns CPU and drops (almost) nothing."""

    def drop(l_row, r_row) -> bool:
        return _burn(PAIR_BURN_ITERATIONS) < 0  # always False: keep the pair

    return BlackBoxBlocker(drop)


def _plan_pipeline(ltable: Table, rtable: Table, salt: str):
    return multi_blocker_graph(
        "bench_plan",
        ltable,
        rtable,
        OverlapBlocker("name", overlap_size=1),
        [
            # User's order: expensive-but-permissive first — exactly the
            # mistake the cost-based optimizer exists to undo.
            ("expensive_permissive", _expensive_permissive_filter()),
            ("cheap_selective", AttrEquivalenceBlocker("cat")),
        ],
        key_salt=salt,
    )


def _candset_bytes(candset: Table) -> bytes:
    return pickle.dumps({c: candset.column(c) for c in candset.columns})


def _run_plan_suite(n_rows: int) -> dict:
    ltable, rtable = _plan_tables(n_rows)
    salt = f"bench-{n_rows}"
    stats = StatsStore()

    # Cold: no statistics, so planning must be a cheap explicit no-op.
    plan_started = time.perf_counter()
    cold_plan = plan_graph(_plan_pipeline(ltable, rtable, salt), stats=stats)
    cold_plan_seconds = time.perf_counter() - plan_started
    assert not cold_plan.optimized
    run_started = time.perf_counter()
    cold_result = execute_plan(cold_plan, stats=stats, record=True)
    cold_seconds = time.perf_counter() - run_started

    # Warm: the recorded selectivities put the cheap filter first.
    plan_started = time.perf_counter()
    warm_plan = plan_graph(_plan_pipeline(ltable, rtable, salt), stats=stats)
    warm_plan_seconds = time.perf_counter() - plan_started
    run_started = time.perf_counter()
    warm_result = execute_plan(warm_plan, stats=stats, record=True)
    warm_seconds = time.perf_counter() - run_started

    identical = _candset_bytes(warm_result.store["candset"]) == _candset_bytes(
        cold_result.store["candset"]
    )
    return {
        "n_rows": n_rows,
        "base_pairs": cold_result.store["candset"].num_rows,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds else 0.0,
        "cold_plan_seconds": cold_plan_seconds,
        "warm_plan_seconds": warm_plan_seconds,
        "cold_plan_overhead_fraction": (
            cold_plan_seconds / cold_seconds if cold_seconds else 0.0
        ),
        "reorders": warm_plan.reorders,
        "moved_nodes": warm_plan.moved_nodes,
        "byte_identical": identical,
    }


def _plan_rows(suite: dict) -> list[dict]:
    return [
        {
            "workload": f"multi-blocker pipeline ({suite['n_rows']}x{suite['n_rows']} rows)",
            "cold (user order)": f"{suite['cold_seconds'] * 1000:.0f}ms",
            "warm (planned)": f"{suite['warm_seconds'] * 1000:.0f}ms",
            "speedup": f"{suite['speedup']:.2f}x",
            "plan overhead": f"{suite['cold_plan_seconds'] * 1000:.2f}ms "
            f"({suite['cold_plan_overhead_fraction']:.2%} of cold run)",
            "identical": "yes" if suite["byte_identical"] else "NO",
        }
    ]


def test_runtime_dag_plan(benchmark):
    """Full-scale planner comparison; archives ``BENCH_plan.json``."""
    suite = once(benchmark, lambda: _run_plan_suite(n_rows=220))
    report(
        "runtime_dag_plan",
        "Cost-based planner: cold vs stats-warmed multi-blocker pipeline",
        format_table(_plan_rows(suite))
        + "\n\nThe cold run executes the user's order (expensive permissive"
          "\nfilter over the full candidate set); the warm run plans from the"
          "\nrecorded statistics and runs the selective equality filter first.",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_plan.json").write_text(
        json.dumps({"experiment": "runtime_dag_plan", **suite}, indent=2) + "\n",
        encoding="utf-8",
    )
    assert suite["byte_identical"], "optimized run changed the candidate set"
    assert suite["reorders"] >= 1, "planner failed to reorder the filter chain"
    assert suite["speedup"] >= 1.3, (
        f"warm planner run only {suite['speedup']:.2f}x faster than cold"
    )
    assert suite["cold_plan_overhead_fraction"] < 0.01, (
        "cold planning overhead exceeds 1% of the run"
    )


def test_runtime_dag_plan_smoke():
    """CI-scale version: reorder + byte-identity, no timing assertions."""
    suite = _run_plan_suite(n_rows=60)
    report(
        "runtime_dag_plan_smoke",
        "Cost-based planner smoke (small scale factor)",
        format_table(_plan_rows(suite)),
    )
    assert suite["byte_identical"], "optimized run changed the candidate set"
    assert suite["reorders"] >= 1, "planner failed to reorder the filter chain"
