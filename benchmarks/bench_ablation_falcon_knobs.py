"""Ablation — Falcon's design knobs: forest size n and vote threshold alpha.

Falcon declares a pair a match when at least alpha * n trees vote match.
This bench sweeps both knobs on one task and reports the accuracy trade:
raising alpha trades recall for precision (stricter voting), and more
trees stabilize the ensemble.
"""

from __future__ import annotations

import numpy as np
from _report import format_table, prf, report
from conftest import once

from repro.datasets import build_cloudmatcher_dataset, cloudmatcher_scenario
from repro.falcon import FalconConfig, run_falcon
from repro.labeling import LabelingSession, OracleLabeler


def sweep():
    dataset = build_cloudmatcher_dataset(cloudmatcher_scenario("products_a"))

    # One Falcon run; then re-apply the learned forest G at different
    # alphas (the voting rule is a pure post-processing knob).
    session = LabelingSession(OracleLabeler(dataset.gold_pairs), budget=800)
    result = run_falcon(
        dataset, session,
        FalconConfig(sample_size=1000, blocking_budget=150, matching_budget=300,
                     n_trees=10, random_state=0),
    )
    from repro.features import extract_feature_vecs, feature_matrix, get_features_for_matching

    features = get_features_for_matching(dataset.ltable, dataset.rtable)
    fv = extract_feature_vecs(result.candset, features)
    X = feature_matrix(fv, features.names(), impute=False)
    X = np.where(np.isnan(X), 0.0, X)
    pairs = list(zip(result.candset["ltable_id"], result.candset["rtable_id"]))

    alpha_rows = []
    for alpha in (0.1, 0.3, 0.5, 0.7, 0.9):
        predictions = result.matching_stage.forest.predict_with_alpha(X, alpha=alpha)
        predicted = {p for p, flag in zip(pairs, predictions) if flag == 1}
        precision, recall, f1 = prf(predicted, dataset.gold_pairs)
        alpha_rows.append(
            {
                "alpha": alpha,
                "matches": len(predicted),
                "precision": f"{precision:.3f}",
                "recall": f"{recall:.3f}",
                "f1": f"{f1:.3f}",
                "_p": precision,
                "_r": recall,
                "_n": len(predicted),
            }
        )

    tree_rows = []
    for n_trees in (1, 5, 10, 20):
        session = LabelingSession(OracleLabeler(dataset.gold_pairs), budget=800)
        run = run_falcon(
            dataset, session,
            FalconConfig(sample_size=1000, blocking_budget=150,
                         matching_budget=300, n_trees=n_trees, random_state=0),
        )
        precision, recall, f1 = prf(run.match_pairs, dataset.gold_pairs)
        tree_rows.append(
            {
                "n trees": n_trees,
                "precision": f"{precision:.3f}",
                "recall": f"{recall:.3f}",
                "f1": f"{f1:.3f}",
                "questions": run.questions,
                "_f1": f1,
            }
        )
    return alpha_rows, tree_rows


def test_ablation_falcon_knobs(benchmark):
    alpha_rows, tree_rows = once(benchmark, sweep)
    display_alpha = [
        {k: v for k, v in row.items() if not k.startswith("_")} for row in alpha_rows
    ]
    display_trees = [
        {k: v for k, v in row.items() if not k.startswith("_")} for row in tree_rows
    ]
    report(
        "ablation_falcon_knobs",
        "Falcon knobs: vote threshold alpha and forest size n",
        "Alpha sweep (same forest, stricter voting):\n"
        + format_table(display_alpha)
        + "\n\nForest-size sweep (full reruns):\n"
        + format_table(display_trees)
        + "\n\nExpected shape: match count shrinks monotonically with alpha"
          "\n(precision up, recall down); a single tree is noticeably worse"
          "\nthan an ensemble.",
    )
    match_counts = [row["_n"] for row in alpha_rows]
    assert match_counts == sorted(match_counts, reverse=True)
    assert alpha_rows[-1]["_p"] >= alpha_rows[0]["_p"] - 1e-9
    assert alpha_rows[0]["_r"] >= alpha_rows[-1]["_r"] - 1e-9
    best_ensemble = max(row["_f1"] for row in tree_rows[1:])
    assert best_ensemble >= tree_rows[0]["_f1"] - 0.02
