"""Section 4.1 (production stage) — multicore partition parallelism.

PyMatcher's production guide scales the captured workflow over multiple
cores (there via Dask; here via the process-pool executor).  This bench
partitions a feature-extraction + prediction workload and reports the
speedup at 1, 2, and 4 workers.
"""

from __future__ import annotations

import time

from _report import format_table, report
from conftest import once

from repro.blocking import OverlapBlocker
from repro.catalog import get_catalog
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import person
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.pipeline import parallel_map_partitions

DATASET = make_em_dataset(
    person, 900, 900, match_fraction=0.5,
    dirtiness=DirtinessConfig.light(), seed=21, name="prod-scaling",
)
FEATURES = get_features_for_matching(DATASET.ltable, DATASET.rtable)


def extract_partition(candset_part):
    """Module-level (picklable) per-partition workload."""
    catalog = get_catalog()
    catalog.set_candset_metadata(
        candset_part, "_id", "ltable_id", "rtable_id", DATASET.ltable, DATASET.rtable
    )
    return extract_feature_vecs(candset_part, FEATURES, catalog)


def sweep():
    candset = OverlapBlocker("name", overlap_size=1).block_tables(
        DATASET.ltable, DATASET.rtable, "id", "id"
    )
    rows = []
    baseline = None
    for workers in (1, 2, 4):
        started = time.perf_counter()
        result = parallel_map_partitions(
            candset, extract_partition, n_workers=workers, n_partitions=8
        )
        elapsed = time.perf_counter() - started
        if baseline is None:
            baseline = elapsed
        rows.append(
            {
                "workers": workers,
                "wall seconds": f"{elapsed:.2f}",
                "speedup": f"{baseline / elapsed:.2f}x",
                "rows": result.num_rows,
                "_speedup": baseline / elapsed,
                "_rows": result.num_rows,
            }
        )
    return candset.num_rows, rows


def test_production_partition_scaling(benchmark):
    import os

    cores = len(os.sched_getaffinity(0))
    total_pairs, rows = once(benchmark, sweep)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    report(
        "production_scaling",
        "Production stage: partition-parallel execution (Dask substitute)",
        format_table(display)
        + f"\n\nWorkload: feature extraction over {total_pairs} candidate"
          f"\npairs on a machine with {cores} usable core(s)."
          "\nExpected shape: speedup approaching the core count; on a"
          "\nsingle-core machine the speedup column is necessarily ~1x and"
          "\nthe bench verifies correctness + bounded pool overhead instead.",
    )
    assert all(row["_rows"] == total_pairs for row in rows)
    if cores >= 2:
        assert rows[-1]["_speedup"] > 1.3  # parallel beats serial
    else:
        # One core: the pool cannot win, but must not collapse either.
        assert rows[-1]["_speedup"] > 0.4
