"""Ablation — the intelligent down sampler vs naive uniform sampling.

The guide's first step (Figure 2) down-samples two large tables before
development.  Sampling both sides uniformly destroys matches (the chance a
pair survives is the product of two sampling rates); Magellan's
``down_sample`` probes a token inverted index so that for every sampled
B-tuple, its likely A-matches are pulled into the sample.  This bench
sweeps the sample size and reports how many gold matches survive each
sampler — the motivating gap for the "Down Sample" pain-point tool of
Table 3.
"""

from __future__ import annotations

from _report import format_table, report
from conftest import once

from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import restaurant
from repro.sampling import down_sample, naive_down_sample

FULL = 3000


def surviving(dataset, l_sample, r_sample):
    l_ids = set(l_sample.column("id"))
    r_ids = set(r_sample.column("id"))
    return sum(1 for a, b in dataset.gold_pairs if a in l_ids and b in r_ids)


def sweep():
    dataset = make_em_dataset(
        restaurant, FULL, FULL, match_fraction=0.4,
        dirtiness=DirtinessConfig.light(), seed=8, name="downsample",
    )
    rows = []
    for size in (200, 400, 800, 1600):
        smart = surviving(dataset, *down_sample(dataset.ltable, dataset.rtable, size, seed=0))
        naive = surviving(
            dataset, *naive_down_sample(dataset.ltable, dataset.rtable, size, seed=0)
        )
        expected_naive = len(dataset.gold_pairs) * (size / FULL) ** 2
        rows.append(
            {
                "sample size": size,
                "matches survive (smart)": smart,
                "matches survive (naive)": naive,
                "naive expectation": f"{expected_naive:.0f}",
                "advantage": f"{smart / max(naive, 1):.1f}x",
                "_smart": smart,
                "_naive": naive,
            }
        )
    return rows


def test_ablation_down_sampling(benchmark):
    rows = once(benchmark, sweep)
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    report(
        "ablation_downsample",
        "Intelligent down-sampling vs naive uniform sampling",
        format_table(display)
        + "\n\nExpected shape: the probing sampler preserves more matches at"
          "\nevery size, and several times more at small sampling rates —"
          "\nthe regime the guide's 1M -> 100K step lives in.",
    )
    for row in rows:
        assert row["_smart"] > row["_naive"], row
    # At small sampling rates (the interesting regime) the gap is large.
    small = [row for row in rows if row["sample size"] <= FULL / 5]
    assert all(row["_smart"] >= 2 * max(row["_naive"], 1) for row in small), small
