"""Figure 2 — The steps of the PyMatcher development-stage guide.

Executes the figure's exact pipeline: two large tables are down-sampled,
two candidate blockers X and Y are compared and the better one selected,
a sample of the candidate set is labeled, two learning-based matchers are
cross-validated (the figure shows the winner at F1 = 0.93), and the
winner predicts over the candidate set.  The reported table carries one
row per guide step with its concrete outcome.
"""

from __future__ import annotations

from _report import format_table, prf, report
from conftest import once

from repro.blocking import OverlapBlocker, blocking_recall
from repro.catalog import get_catalog
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import restaurant
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.labeling import LabelingSession, OracleLabeler
from repro.matchers import LogRegMatcher, RFMatcher, select_matcher
from repro.sampling import down_sample, weighted_sample_candset

FULL_SIZE = 3000  # stands in for the figure's 1M-tuple tables
DEV_SIZE = 600  # stands in for the figure's 100K-tuple sample


def run_guide():
    steps = []
    dataset = make_em_dataset(
        restaurant, FULL_SIZE, FULL_SIZE, match_fraction=0.4,
        dirtiness=DirtinessConfig.light(), seed=2, name="figure2",
    )
    steps.append({"Guide step": "input", "Outcome": f"|A|=|B|={FULL_SIZE}"})

    # Down sample A, B -> A', B'.
    l_dev, r_dev = down_sample(
        dataset.ltable, dataset.rtable, DEV_SIZE, y_param=2, seed=0
    )
    dev_gold = {
        (a, b)
        for a, b in dataset.gold_pairs
        if a in set(l_dev["id"]) and b in set(r_dev["id"])
    }
    steps.append(
        {
            "Guide step": "down sample",
            "Outcome": f"|A'|={l_dev.num_rows} |B'|={r_dev.num_rows}, "
                       f"{len(dev_gold)} matches survive",
        }
    )

    # Try blockers X and Y; pick the better by (recall, size).
    blocker_x = OverlapBlocker("name", overlap_size=1)
    blocker_y = OverlapBlocker("street", overlap_size=2)
    candidates = {}
    for label, blocker in (("X: name overlap", blocker_x), ("Y: street overlap", blocker_y)):
        candset = blocker.block_tables(l_dev, r_dev, "id", "id")
        candidates[label] = (candset, blocking_recall(candset, dev_gold))
    chosen_label = max(candidates, key=lambda k: candidates[k][1])
    candset, chosen_recall = candidates[chosen_label]
    steps.append(
        {
            "Guide step": "select blocker",
            "Outcome": f"{chosen_label} (recall {chosen_recall:.2f}, "
                       f"|C|={candset.num_rows})",
        }
    )

    # Sample S from C and label it -> G.
    sample = weighted_sample_candset(candset, 500, seed=0)
    session = LabelingSession(OracleLabeler(dev_gold))
    session.label_candset(sample)
    steps.append(
        {
            "Guide step": "label sample",
            "Outcome": f"{session.questions_asked} pairs labeled "
                       f"({sum(sample['label'])} matches)",
        }
    )

    # Cross-validate matchers U and V on G; select the better.
    features = get_features_for_matching(l_dev, r_dev)
    fv = extract_feature_vecs(sample, features, label_column="label")
    selection = select_matcher(
        [LogRegMatcher(name="U: logistic regression"),
         RFMatcher(name="V: random forest", n_estimators=10, random_state=0)],
        fv, features.names(), n_splits=5,
    )
    steps.append(
        {
            "Guide step": "select matcher (CV)",
            "Outcome": f"{selection.best_matcher.name}, F1={selection.best_score:.2f}"
                       " (figure: V wins at F1=0.93)",
        }
    )

    # Apply the winner to C.
    fv_all = extract_feature_vecs(candset, features)
    selection.best_matcher.predict(fv_all)
    meta = get_catalog().get_candset_metadata(candset)
    predicted = {
        pair
        for pair, flag in zip(
            zip(fv_all[meta.fk_ltable], fv_all[meta.fk_rtable]), fv_all["predicted"]
        )
        if flag == 1
    }
    precision, recall, f1 = prf(predicted, dev_gold)
    steps.append(
        {
            "Guide step": "predict + quality check",
            "Outcome": f"P={precision:.2f} R={recall:.2f} F1={f1:.2f} "
                       f"on {candset.num_rows} candidates",
        }
    )
    return steps, selection.best_score, f1


def test_figure2_guide_workflow(benchmark):
    steps, cv_f1, final_f1 = once(benchmark, run_guide)
    report(
        "figure2",
        "The steps of the PyMatcher guide (development stage)",
        format_table(steps)
        + "\n\nExpected shape (paper): cross-validated matcher selection"
          "\nlands around F1 = 0.93 and the workflow is accurate end to end.",
    )
    assert cv_f1 > 0.85
    assert final_f1 > 0.85
